package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/countsketch"
	"repro/internal/faultio"
)

// shardsBody is the degradation object every JSON response must carry.
type shardsBody struct {
	Answered *int  `json:"answered"`
	Total    *int  `json:"total"`
	Missing  []int `json:"missing"`
}

// checkResponse enforces the chaos acceptance contract on one HTTP
// response: a 2xx either answers fully or names the missing shards in
// both the header and the body; any 5xx must still carry the shards
// object — no failure response may hide the degradation state.
func checkResponse(t *testing.T, op string, resp *http.Response, body []byte) {
	t.Helper()
	var parsed struct {
		Shards *shardsBody `json:"shards"`
		Error  string      `json:"error"`
	}
	if err := json.Unmarshal(body, &parsed); err != nil {
		t.Errorf("%s: status %d with unparseable body %q", op, resp.StatusCode, body)
		return
	}
	if parsed.Shards == nil || parsed.Shards.Answered == nil || parsed.Shards.Total == nil {
		t.Errorf("%s: status %d response lacks the shards object: %s", op, resp.StatusCode, body)
		return
	}
	sh := parsed.Shards
	if resp.StatusCode >= 500 {
		if parsed.Error == "" {
			t.Errorf("%s: %d without an error message: %s", op, resp.StatusCode, body)
		}
		return // degradation info present — a 5xx is allowed to happen
	}
	hdr := resp.Header.Get("X-Shards-Answered")
	if want := fmt.Sprintf("%d/%d", *sh.Answered, *sh.Total); hdr != want {
		t.Errorf("%s: X-Shards-Answered %q disagrees with body %q", op, hdr, want)
	}
	if *sh.Answered < *sh.Total {
		if len(sh.Missing) != *sh.Total-*sh.Answered {
			t.Errorf("%s: partial %s but missing list %v", op, hdr, sh.Missing)
		}
		if resp.Header.Get("X-Shards-Missing") == "" {
			t.Errorf("%s: partial %s without X-Shards-Missing header", op, hdr)
		}
	}
}

// TestChaosMixedLoadWithFaultsAndKills is the acceptance scenario:
// 8 shards under concurrent ingest/estimate/mine/heavy-hitter load
// with transient ingest faults and flaky checkpoint I/O, while two
// shards are killed mid-run. Every response must satisfy the
// degradation contract (see checkResponse), and after the dust
// settles the service must still answer with a 6/8 partial. Run under
// -race this doubles as the snapshot-isolation proof. FAULT_SEED
// varies the injected-fault schedule (CI sweeps it).
func TestChaosMixedLoadWithFaultsAndKills(t *testing.T) {
	seed := faultio.EnvSeed(42)
	var ingestOps atomic.Int64
	var ckptOps atomic.Uint64
	cfg := Config{
		Shards:          8,
		NumAttrs:        10,
		SampleCapacity:  256,
		CountSketch:     &countsketch.Config{Rows: 3, Cols: 64, Base: 4},
		Seed:            seed,
		CheckpointDir:   t.TempDir(),
		CheckpointEvery: 150,
		MaxRetries:      4,
		DegradeAfter:    2,
		DeadAfter:       1 << 30, // only the explicit kills produce dead shards
		Sleep:           func(time.Duration) {},
		// Roughly 1 in 13 ingest applications hits a transient storage
		// fault; retries must absorb every one of them.
		IngestFault: func(shard, attempt int) error {
			if attempt == 0 && ingestOps.Add(1)%13 == 0 {
				return fmt.Errorf("%w: transient store fault", faultio.ErrInjected)
			}
			return nil
		},
		// Every other checkpoint write stream is flaky.
		CheckpointWriteWrap: func(w io.Writer) io.Writer {
			n := ckptOps.Add(1)
			if n%2 == 0 {
				return w
			}
			return faultio.NewWriter(w, faultio.WithSeed(seed^n), faultio.WithFlakyErrors(0.10, nil))
		},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(path string, payload any) (*http.Response, []byte, error) {
		raw, _ := json.Marshal(payload)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			return nil, nil, err
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, nil, rerr
		}
		return resp, body, nil
	}

	const (
		workersPerKind = 3
		opsPerWorker   = 60
	)
	var wg sync.WaitGroup
	run := func(op string, f func(worker, i int) (*http.Response, []byte, error)) {
		for w := 0; w < workersPerKind; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < opsPerWorker; i++ {
					resp, body, err := f(w, i)
					if err != nil {
						t.Errorf("%s: transport error: %v", op, err)
						return
					}
					checkResponse(t, op, resp, body)
				}
			}(w)
		}
	}

	run("ingest", func(w, i int) (*http.Response, []byte, error) {
		return post("/v1/ingest", map[string]any{"rows": genRows(40, 10, seed+uint64(w*1000+i))})
	})
	run("estimate", func(w, i int) (*http.Response, []byte, error) {
		return post("/v1/estimate", map[string]any{"itemsets": [][]int{{9}, {0, 1}, {i % 10}}})
	})
	run("mine", func(w, i int) (*http.Response, []byte, error) {
		return post("/v1/mine", map[string]any{"min_support": 0.4, "max_k": 2})
	})
	run("heavyhitters", func(w, i int) (*http.Response, []byte, error) {
		return post("/v1/heavyhitters", map[string]any{"phi": 0.3})
	})
	run("checkpoint", func(w, i int) (*http.Response, []byte, error) {
		return post("/v1/checkpoint", map[string]any{})
	})

	// The killer: take down shards 2 and 5 while the load is running.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, id := range []int{2, 5} {
			resp, body, err := post("/v1/kill?shard="+strconv.Itoa(id), map[string]any{})
			if err != nil {
				t.Errorf("kill: %v", err)
				return
			}
			checkResponse(t, "kill", resp, body)
		}
	}()
	wg.Wait()

	// Post-chaos: the two killed shards are dead, everyone else lives.
	for i := 0; i < s.NumShards(); i++ {
		st := s.Shard(i).State()
		if i == 2 || i == 5 {
			if st != Dead {
				t.Errorf("killed shard %d is %v", i, st)
			}
		} else if st == Dead {
			t.Errorf("shard %d died without being killed", i)
		}
	}
	if !s.Ready() {
		t.Fatal("service not ready after chaos")
	}
	resp, body, err := post("/v1/estimate", map[string]any{"itemsets": [][]int{{9}}})
	if err != nil {
		t.Fatal(err)
	}
	checkResponse(t, "post-chaos estimate", resp, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-chaos estimate status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Shards-Answered"); got != "6/8" {
		t.Fatalf("post-chaos X-Shards-Answered %q, want 6/8", got)
	}
	if got := resp.Header.Get("X-Shards-Missing"); got != "2,5" {
		t.Fatalf("post-chaos X-Shards-Missing %q, want 2,5", got)
	}

	// Re-home the two dead shards — one through the raw envelope
	// replication pair (GET a live peer's sketch, PUT it into the dead
	// shard), one through the one-shot admin lever — and the service
	// must return to a full 8/8 fan-out: degraded then recovered, not
	// partial forever.
	resp, err = http.Get(srv.URL + "/v1/shards/0/sketch")
	if err != nil {
		t.Fatal(err)
	}
	envelope, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET peer envelope: %d, %v", resp.StatusCode, rerr)
	}
	req, err := http.NewRequest(http.MethodPut, srv.URL+"/v1/shards/2/sketch", bytes.NewReader(envelope))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Shard-Seen", resp.Header.Get("X-Shard-Seen"))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	putBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT bootstrap of shard 2: %d: %s", resp.StatusCode, putBody)
	}
	resp, body, err = post("/v1/rehome?shard=5&from=1", map[string]any{})
	if err != nil {
		t.Fatal(err)
	}
	checkResponse(t, "rehome", resp, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rehome of shard 5: %d: %s", resp.StatusCode, body)
	}

	resp, body, err = post("/v1/estimate", map[string]any{"itemsets": [][]int{{9}}})
	if err != nil {
		t.Fatal(err)
	}
	checkResponse(t, "post-rehome estimate", resp, body)
	if got := resp.Header.Get("X-Shards-Answered"); got != "8/8" {
		t.Fatalf("post-rehome X-Shards-Answered %q, want 8/8", got)
	}
	var est struct {
		Estimates []float64 `json:"estimates"`
	}
	if err := json.Unmarshal(body, &est); err != nil || len(est.Estimates) != 1 {
		t.Fatalf("post-rehome estimate body %s: %v", body, err)
	}
	// Attribute 9 fires w.p. 10/11 in genRows; the re-homed replicas
	// are identically-distributed stand-ins, so the recovered service
	// must stay inside the estimators' tolerance of that target.
	if target := 10.0 / 11.0; math.Abs(est.Estimates[0]-target) > 0.1 {
		t.Fatalf("post-rehome estimate %v, want within 0.1 of %v", est.Estimates[0], target)
	}
	for i := 0; i < s.NumShards(); i++ {
		if st := s.Shard(i).State(); st == Dead {
			t.Errorf("shard %d still dead after re-homing", i)
		}
	}

	// The flaky checkpoint streams never tore a file: whatever is on
	// disk now must recover or be absent — restart and check.
	if err := s.Close(); err != nil {
		// Close's final checkpoints can hit the flaky wrapper; that is
		// a degradation, not corruption.
		t.Logf("close: %v (flaky checkpoint stream)", err)
	}
	cfg.CheckpointWriteWrap = nil
	cfg.IngestFault = nil
	cfg.StrictRecovery = true
	re, err := New(cfg)
	if err != nil {
		t.Fatalf("strict recovery after chaos found a torn checkpoint: %v", err)
	}
	re.Close()
}

// TestChaosKillEndpointValidation pins the admin lever's guardrails.
func TestChaosKillEndpointValidation(t *testing.T) {
	s := mustNew(t, testConfig(4))
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	for _, q := range []string{"", "?shard=-1", "?shard=4", "?shard=x"} {
		resp, err := http.Post(srv.URL+"/v1/kill"+q, "application/json", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("kill%q: status %d, want 400", q, resp.StatusCode)
		}
	}
}
