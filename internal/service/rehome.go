package service

import (
	"bytes"
	"fmt"
	"io"

	itemsketch "repro"
	"repro/internal/core"
)

// This file is the shard re-homing state machine: when a shard goes
// dead its ingest slot is redistributed to the live shards (so writes
// keep landing instead of shrinking the round-robin), and a
// replacement can later be bootstrapped from a peer's replication
// envelope — the same byte stream GET /v1/shards/{id}/sketch serves —
// turning "partial forever" into "degraded then recovered".
//
// Routing is a slot table: slot i is shard i's home, and
// recomputeRouting reassigns dead shards' slots to live shards
// deterministically (slot → live[slot mod len(live)]). The table is
// recomputed on every Dead transition in either direction, which
// setState hooks.

// recomputeRouting rebuilds the slot table from the current shard
// states. A live shard always owns its home slot; a dead shard's slot
// re-homes to a live shard; with no live shards every slot is -1 (the
// all-dead state Ingest reports as ErrNoShards).
func (s *Service) recomputeRouting() {
	s.routeMu.Lock()
	defer s.routeMu.Unlock()
	live := make([]int, 0, len(s.shards))
	for _, sh := range s.shards {
		if sh.State() != Dead {
			live = append(live, sh.id)
		}
	}
	for slot := range s.routing {
		switch {
		case s.shards[slot].State() != Dead:
			s.routing[slot] = slot
		case len(live) == 0:
			s.routing[slot] = -1
		default:
			s.routing[slot] = live[slot%len(live)]
		}
	}
}

// routingSnapshot copies the slot table, or returns nil when every
// slot is ownerless (all shards dead — recomputeRouting only writes -1
// into all slots together).
func (s *Service) routingSnapshot() []int {
	s.routeMu.RLock()
	defer s.routeMu.RUnlock()
	if len(s.routing) == 0 || s.routing[0] < 0 {
		return nil
	}
	return append([]int(nil), s.routing...)
}

// Routing returns the current ingest slot table: entry i is the shard
// owning shard i's key range — i itself while shard i is live, the
// re-home target while it is dead, -1 when every shard is dead.
func (s *Service) Routing() []int {
	s.routeMu.RLock()
	defer s.routeMu.RUnlock()
	return append([]int(nil), s.routing...)
}

// BootstrapShard revives dead shard id from a replication envelope
// stream — the write half of the GET /v1/shards/{id}/sketch read path.
// The envelope's row sample re-seeds the shard's reservoir exactly
// like checkpoint recovery (stream.RestoreReservoir, with seen as the
// stream-length counter); the side summaries restart empty, since the
// envelope carries only the sample, and re-establish their bounds as
// the revived shard ingests. On success the shard returns Healthy and
// its home slot routes to it again.
//
// Only a Dead shard may be bootstrapped: this is the one sanctioned
// exception to "dead is terminal", and it is an explicit operator (or
// orchestrator) action, never an automatic resurrection.
func (s *Service) BootstrapShard(id int, r io.Reader, seen int64) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if id < 0 || id >= len(s.shards) {
		return fmt.Errorf("%w: no shard %d", itemsketch.ErrInvalidParams, id)
	}
	sh := s.shards[id]
	if sh.State() != Dead {
		return fmt.Errorf("%w: shard %d is %s; only a dead shard can be bootstrapped", itemsketch.ErrInvalidParams, id, sh.State())
	}
	sk, err := itemsketch.UnmarshalFrom(r)
	if err != nil {
		return err
	}
	holder, ok := sk.(core.SampleHolder)
	if !ok {
		return fmt.Errorf("%w: bootstrap envelope carries a %T, not a sample-backed sketch", itemsketch.ErrCorruptSketch, sk)
	}
	sample := holder.Sample()
	if sample.NumCols() != s.cfg.NumAttrs {
		return fmt.Errorf("%w: bootstrap sample universe d=%d, service universe d=%d", itemsketch.ErrCorruptSketch, sample.NumCols(), s.cfg.NumAttrs)
	}
	if seen < int64(sample.NumRows()) {
		// An absent or understated counter still admits the sample; the
		// weight floor is the sample itself.
		seen = int64(sample.NumRows())
	}
	return sh.revive(sample, seen)
}

// RehomeFromPeer bootstraps dead shard dst from live shard src in
// process: src's snapshot sample streams through the same envelope
// codec the HTTP replication path uses (itemsketch.MarshalTo →
// UnmarshalFrom), so in-process and cross-node bootstraps are
// byte-identical. The replica carries src's sample and seen weight —
// statistically a stand-in for the lost stream (every shard sees an
// identically-distributed round-robin slice), not the dead shard's
// exact rows; those are only recoverable from its own checkpoint.
func (s *Service) RehomeFromPeer(dst, src int) error {
	if src < 0 || src >= len(s.shards) || src == dst {
		return fmt.Errorf("%w: bad bootstrap peer %d for shard %d", itemsketch.ErrInvalidParams, src, dst)
	}
	peer := s.shards[src]
	if peer.State() == Dead {
		return fmt.Errorf("%w: bootstrap peer %d", ErrShardDead, src)
	}
	snap := peer.snapshot()
	sk, err := core.SubsampleFromSample(snap.res.Database(), s.cfg.Params)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if _, err := itemsketch.MarshalTo(&buf, sk); err != nil {
		return err
	}
	return s.BootstrapShard(dst, &buf, snap.seen)
}
