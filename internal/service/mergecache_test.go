package service

import (
	"context"
	"reflect"
	"testing"

	itemsketch "repro"
)

// windowedConfig is testConfig(d) plus a sliding window with the
// decayed heavy-hitter path enabled — the config that exercises every
// merge-cache path at once.
func windowedConfig(d int) Config {
	cfg := testConfig(d)
	cfg.Window = &WindowConfig{Rows: 256, DecayK: 8}
	return cfg
}

// TestMisraGriesMergeCache mirrors TestCountSketchMergeCache for the
// MG read path: repeated heavy-hitter queries against an unchanged
// service reuse one merged summary (and agree exactly), ingest
// invalidates the generation, and killing a shard changes the key
// rather than serving stale shards.
func TestMisraGriesMergeCache(t *testing.T) {
	const d = 10
	ctx := context.Background()
	s := mustNew(t, testConfig(d))
	if _, err := s.Ingest(ctx, skewedRows(2000, d, 5)); err != nil {
		t.Fatal(err)
	}

	first, n1, _, err := s.HeavyHitters(ctx, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	base := s.mgMerge.builds.Load()
	if base == 0 {
		t.Fatal("first query did not build a merge")
	}
	for i := 0; i < 10; i++ {
		again, n2, p, err := s.HeavyHitters(ctx, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if p.Degraded() {
			t.Fatalf("cached query reported partial %v", p)
		}
		if n2 != n1 || !reflect.DeepEqual(again, first) {
			t.Fatalf("cached answer (%v, %d) != first (%v, %d)", again, n2, first, n1)
		}
	}
	if got := s.mgMerge.builds.Load(); got != base {
		t.Fatalf("10 repeat queries rebuilt the merge %d times", got-base)
	}

	// Cached ≡ uncached: clearing the generation forces a fresh fold
	// over the same snapshots, which must agree bit-for-bit (MergeMG is
	// deterministic).
	s.mgMerge.gen.Store(nil)
	uncached, n3, _, err := s.HeavyHitters(ctx, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if n3 != n1 || !reflect.DeepEqual(uncached, first) {
		t.Fatalf("uncached rebuild (%v, %d) != cached (%v, %d)", uncached, n3, first, n1)
	}
	base = s.mgMerge.builds.Load()

	// Ingest republishes snapshots: the next query must re-merge.
	if _, err := s.Ingest(ctx, skewedRows(100, d, 6)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.HeavyHitters(ctx, 0.2); err != nil {
		t.Fatal(err)
	}
	if got := s.mgMerge.builds.Load(); got != base+1 {
		t.Fatalf("post-ingest query built %d merges, want exactly 1 more", got-base)
	}

	// A dead shard shrinks the candidate set: one re-merge, then the
	// cached generation answers 3/4 without resurrecting the corpse.
	s.KillShard(2)
	after := s.mgMerge.builds.Load()
	for i := 0; i < 3; i++ {
		_, _, p, err := s.HeavyHitters(ctx, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if p.Answered != 3 || len(p.Missing) != 1 || p.Missing[0] != 2 {
			t.Fatalf("post-kill partial %v, want 3/4 missing shard 2", p)
		}
	}
	if got := s.mgMerge.builds.Load(); got != after+1 {
		t.Fatalf("post-kill queries built %d merges, want exactly 1", got-after)
	}
}

// TestDecayedMergeCache is the same contract for the windowed
// (decayed Misra–Gries) heavy-hitter path.
func TestDecayedMergeCache(t *testing.T) {
	const d = 10
	ctx := context.Background()
	s := mustNew(t, windowedConfig(d))
	if _, err := s.Ingest(ctx, skewedRows(2000, d, 5)); err != nil {
		t.Fatal(err)
	}

	first, n1, _, err := s.HeavyHittersWindow(ctx, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	base := s.dmgMerge.builds.Load()
	if base == 0 {
		t.Fatal("first query did not build a merge")
	}
	for i := 0; i < 10; i++ {
		again, n2, p, err := s.HeavyHittersWindow(ctx, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if p.Degraded() {
			t.Fatalf("cached query reported partial %v", p)
		}
		if n2 != n1 || !reflect.DeepEqual(again, first) {
			t.Fatalf("cached answer (%v, %d) != first (%v, %d)", again, n2, first, n1)
		}
	}
	if got := s.dmgMerge.builds.Load(); got != base {
		t.Fatalf("10 repeat queries rebuilt the merge %d times", got-base)
	}

	// Cached ≡ uncached: MergeDecayed is deterministic over the same
	// snapshots.
	s.dmgMerge.gen.Store(nil)
	uncached, n3, _, err := s.HeavyHittersWindow(ctx, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if n3 != n1 || !reflect.DeepEqual(uncached, first) {
		t.Fatalf("uncached rebuild (%v, %d) != cached (%v, %d)", uncached, n3, first, n1)
	}
	base = s.dmgMerge.builds.Load()

	if _, err := s.Ingest(ctx, skewedRows(100, d, 6)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.HeavyHittersWindow(ctx, 0.2); err != nil {
		t.Fatal(err)
	}
	if got := s.dmgMerge.builds.Load(); got != base+1 {
		t.Fatalf("post-ingest query built %d merges, want exactly 1 more", got-base)
	}

	s.KillShard(1)
	after := s.dmgMerge.builds.Load()
	for i := 0; i < 3; i++ {
		_, _, p, err := s.HeavyHittersWindow(ctx, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if p.Answered != 3 || len(p.Missing) != 1 || p.Missing[0] != 1 {
			t.Fatalf("post-kill partial %v, want 3/4 missing shard 1", p)
		}
	}
	if got := s.dmgMerge.builds.Load(); got != after+1 {
		t.Fatalf("post-kill queries built %d merges, want exactly 1", got-after)
	}
}

// minedAttrs projects mining results to their attribute sets, for
// comparisons that should ignore sampling noise in the frequencies.
func minedAttrs(rs []itemsketch.MiningResult) map[string]bool {
	out := make(map[string]bool, len(rs))
	for _, r := range rs {
		key := ""
		for _, a := range r.Items.Attrs() {
			key += string(rune('A' + a))
		}
		out[key] = true
	}
	return out
}

// TestMineMergeCache pins the Mine fix: the union sample used to be
// re-merged (with a fresh seed) on every request, making repeated
// mines both slow and nondeterministic. With the generation cache,
// repeated calls against an unchanged service reuse one merged sample
// — and therefore return identical results — while ingest and kills
// invalidate exactly one generation at a time.
func TestMineMergeCache(t *testing.T) {
	const d = 10
	ctx := context.Background()
	s := mustNew(t, testConfig(d))
	if _, err := s.Ingest(ctx, skewedRows(3000, d, 5)); err != nil {
		t.Fatal(err)
	}

	first, _, err := s.Mine(ctx, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("mine over skewed rows found nothing at support 0.3")
	}
	base := s.mineMerge.builds.Load()
	if base == 0 {
		t.Fatal("first mine did not build a merge")
	}
	for i := 0; i < 5; i++ {
		again, p, err := s.Mine(ctx, 0.3, 2)
		if err != nil {
			t.Fatal(err)
		}
		if p.Degraded() {
			t.Fatalf("cached mine reported partial %v", p)
		}
		if !reflect.DeepEqual(again, first) {
			t.Fatalf("cached mine %v != first %v — the per-request re-merge is back", again, first)
		}
	}
	if got := s.mineMerge.builds.Load(); got != base {
		t.Fatalf("5 repeat mines rebuilt the union sample %d times", got-base)
	}

	// Uncached rebuild draws fresh merge seeds, so the union sample is
	// a different uniform draw — the frequent-itemset *set* must agree
	// even though frequencies may wiggle within the sampling bounds.
	s.mineMerge.gen.Store(nil)
	uncached, _, err := s.Mine(ctx, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(minedAttrs(uncached), minedAttrs(first)) {
		t.Fatalf("uncached mine found %v, cached found %v", minedAttrs(uncached), minedAttrs(first))
	}
	base = s.mineMerge.builds.Load()

	// Ingest invalidates.
	if _, err := s.Ingest(ctx, skewedRows(100, d, 6)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Mine(ctx, 0.3, 2); err != nil {
		t.Fatal(err)
	}
	if got := s.mineMerge.builds.Load(); got != base+1 {
		t.Fatalf("post-ingest mine built %d merges, want exactly 1 more", got-base)
	}

	// Kill invalidates, once, and the partial reports the corpse.
	s.KillShard(3)
	after := s.mineMerge.builds.Load()
	for i := 0; i < 3; i++ {
		_, p, err := s.Mine(ctx, 0.3, 2)
		if err != nil {
			t.Fatal(err)
		}
		if p.Answered != 3 || len(p.Missing) != 1 || p.Missing[0] != 3 {
			t.Fatalf("post-kill partial %v, want 3/4 missing shard 3", p)
		}
	}
	if got := s.mineMerge.builds.Load(); got != after+1 {
		t.Fatalf("post-kill mines built %d merges, want exactly 1", got-after)
	}
}

// TestMergeCachesAcrossStrictRecovery pins the recovery leg of the
// invalidation contract: a service restarted from checkpoints under
// StrictRecovery rebuilds each merge exactly once, and — because
// checkpoints restore the summaries and samples exactly, and the merge
// seed sequence restarts with the service — the restored answers are
// bit-identical to the pre-restart ones.
func TestMergeCachesAcrossStrictRecovery(t *testing.T) {
	const d = 10
	ctx := context.Background()
	cfg := windowedConfig(d)
	cfg.CheckpointDir = t.TempDir()
	s := mustNew(t, cfg)
	if _, err := s.Ingest(ctx, skewedRows(2500, d, 5)); err != nil {
		t.Fatal(err)
	}

	// Record each path's first-build answer. Mine is recorded before
	// any other mine call so it consumes the service's first merge
	// seeds — the same ones the restarted service will draw.
	mineWant, _, err := s.Mine(ctx, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	mgWant, mgN, _, err := s.HeavyHitters(ctx, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	dmgWant, dmgN, _, err := s.HeavyHittersWindow(ctx, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	cfg.StrictRecovery = true
	s2 := mustNew(t, cfg)
	mineGot, p, err := s2.Mine(ctx, 0.3, 2)
	if err != nil || p.Degraded() {
		t.Fatalf("post-recovery mine: (%v, %v)", p, err)
	}
	if !reflect.DeepEqual(mineGot, mineWant) {
		t.Errorf("post-recovery mine %v != pre-restart %v", mineGot, mineWant)
	}
	mgGot, mgN2, _, err := s2.HeavyHitters(ctx, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if mgN2 != mgN || !reflect.DeepEqual(mgGot, mgWant) {
		t.Errorf("post-recovery heavy hitters (%v, %d) != pre-restart (%v, %d)", mgGot, mgN2, mgWant, mgN)
	}
	dmgGot, dmgN2, _, err := s2.HeavyHittersWindow(ctx, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if dmgN2 != dmgN || !reflect.DeepEqual(dmgGot, dmgWant) {
		t.Errorf("post-recovery windowed hitters (%v, %d) != pre-restart (%v, %d)", dmgGot, dmgN2, dmgWant, dmgN)
	}

	// Exactly one build per path on the restarted service, and repeats
	// stay cached.
	for i := 0; i < 3; i++ {
		if _, _, err := s2.Mine(ctx, 0.3, 2); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := s2.HeavyHitters(ctx, 0.2); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := s2.HeavyHittersWindow(ctx, 0.2); err != nil {
			t.Fatal(err)
		}
	}
	mb := s2.MergeBuilds()
	if mb.Mine != 1 || mb.MisraGries != 1 || mb.Decayed != 1 {
		t.Errorf("post-recovery builds %+v, want exactly one per path", mb)
	}
}
