package service

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	itemsketch "repro"
	"repro/internal/rng"
)

// testConfig returns a small deterministic config with sleeps disabled.
func testConfig(d int) Config {
	return Config{
		Shards:         4,
		NumAttrs:       d,
		SampleCapacity: 512,
		Seed:           7,
		Sleep:          func(time.Duration) {},
	}
}

// genRows produces n deterministic rows over d attributes where
// attribute a fires with probability (a+1)/(d+1) — denser columns for
// higher indices, so estimates have known targets.
func genRows(n, d int, seed uint64) [][]int {
	r := rng.New(seed)
	rows := make([][]int, n)
	for i := range rows {
		var row []int
		for a := 0; a < d; a++ {
			if r.Float64() < float64(a+1)/float64(d+1) {
				row = append(row, a)
			}
		}
		rows[i] = row
	}
	return rows
}

func mustNew(t *testing.T, cfg Config) *Service {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestIngestAndEstimate(t *testing.T) {
	const d = 8
	s := mustNew(t, testConfig(d))
	ctx := context.Background()
	rows := genRows(4000, d, 1)
	n, err := s.Ingest(ctx, rows)
	if err != nil || n != len(rows) {
		t.Fatalf("Ingest = (%d, %v), want (%d, nil)", n, err, len(rows))
	}
	ts := []itemsketch.Itemset{itemsketch.MustItemset(d - 1), itemsketch.MustItemset(0)}
	ests, p, err := s.Estimate(ctx, ts)
	if err != nil {
		t.Fatal(err)
	}
	if p.Degraded() {
		t.Fatalf("healthy service reported partial %v", p)
	}
	// Column d-1 fires w.p. d/(d+1); column 0 w.p. 1/(d+1).
	if want := float64(d) / float64(d+1); math.Abs(ests[0]-want) > 0.05 {
		t.Errorf("dense column estimate %v, want ≈ %v", ests[0], want)
	}
	if want := 1 / float64(d+1); math.Abs(ests[1]-want) > 0.05 {
		t.Errorf("sparse column estimate %v, want ≈ %v", ests[1], want)
	}
}

func TestEstimateDegradedPartialAfterKill(t *testing.T) {
	const d = 6
	s := mustNew(t, testConfig(d))
	ctx := context.Background()
	if _, err := s.Ingest(ctx, genRows(2000, d, 2)); err != nil {
		t.Fatal(err)
	}
	s.KillShard(1)
	s.KillShard(3)
	ests, p, err := s.Estimate(ctx, []itemsketch.Itemset{itemsketch.MustItemset(d - 1)})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Degraded() || p.Answered != 2 || p.Total != 4 {
		t.Fatalf("partial = %+v, want 2/4 degraded", p)
	}
	if got := p.String(); got != "2/4" {
		t.Fatalf("header value %q, want 2/4", got)
	}
	if len(p.Missing) != 2 || p.Missing[0] != 1 || p.Missing[1] != 3 {
		t.Fatalf("missing = %v, want [1 3]", p.Missing)
	}
	if want := float64(d) / float64(d+1); math.Abs(ests[0]-want) > 0.08 {
		t.Errorf("degraded estimate %v strayed from %v", ests[0], want)
	}
}

func TestEstimateAllShardsDead(t *testing.T) {
	const d = 4
	s := mustNew(t, testConfig(d))
	for i := 0; i < s.NumShards(); i++ {
		s.KillShard(i)
	}
	_, p, err := s.Estimate(context.Background(), []itemsketch.Itemset{itemsketch.MustItemset(0)})
	if !errors.Is(err, ErrNoShards) {
		t.Fatalf("want ErrNoShards, got %v", err)
	}
	if p.Answered != 0 || p.Total != 4 {
		t.Fatalf("partial = %+v, want 0/4", p)
	}
}

func TestIngestReroutesAroundFailingShard(t *testing.T) {
	const d = 4
	cfg := testConfig(d)
	cfg.MaxRetries = 2
	cfg.DeadAfter = 1 // first exhausted retry kills the shard
	// Shard 2's storage always fails; everyone else is clean.
	cfg.IngestFault = func(shard, attempt int) error {
		if shard == 2 {
			return errors.New("disk on fire")
		}
		return nil
	}
	s := mustNew(t, cfg)
	ctx := context.Background()
	rows := genRows(400, d, 3)
	n, err := s.Ingest(ctx, rows)
	if err != nil {
		t.Fatalf("ingest failed despite reroute: %v", err)
	}
	if n != len(rows) {
		t.Fatalf("accepted %d rows, want %d (failed batches must reroute)", n, len(rows))
	}
	if st := s.Shard(2).State(); st != Dead {
		t.Fatalf("shard 2 state %v, want dead", st)
	}
	var total int64
	for i := 0; i < s.NumShards(); i++ {
		total += s.Shard(i).Seen()
	}
	if total != int64(len(rows)) {
		t.Fatalf("shards saw %d rows total, want %d", total, len(rows))
	}
}

func TestRetryRecoversFromTransientFaults(t *testing.T) {
	const d = 4
	cfg := testConfig(d)
	cfg.Shards = 1
	cfg.MaxRetries = 4
	cfg.DeadAfter = 10
	attempts := 0
	cfg.IngestFault = func(shard, attempt int) error {
		attempts++
		if attempt < 2 {
			return errors.New("transient blip")
		}
		return nil
	}
	s := mustNew(t, cfg)
	if _, err := s.Ingest(context.Background(), [][]int{{0, 1}}); err != nil {
		t.Fatalf("retry should have absorbed the transient fault: %v", err)
	}
	if attempts != 3 {
		t.Fatalf("hook consulted %d times, want 3 (fail, fail, succeed)", attempts)
	}
	if st := s.Shard(0).State(); st != Healthy {
		t.Fatalf("state %v after recovered retries, want healthy", st)
	}
}

func TestHealthStateMachine(t *testing.T) {
	const d = 4
	cfg := testConfig(d)
	cfg.Shards = 1
	cfg.MaxRetries = 1
	cfg.DegradeAfter = 1
	cfg.DeadAfter = 3
	fail := true
	cfg.IngestFault = func(int, int) error {
		if fail {
			return errors.New("flaky store")
		}
		return nil
	}
	s := mustNew(t, cfg)
	ctx := context.Background()
	sh := s.Shard(0)

	if _, err := s.Ingest(ctx, [][]int{{0}}); err == nil {
		t.Fatal("want ingest error with no reroute target")
	}
	if sh.State() != Degraded {
		t.Fatalf("after 1 failure: %v, want degraded", sh.State())
	}
	fail = false
	if _, err := s.Ingest(ctx, [][]int{{0}}); err != nil {
		t.Fatal(err)
	}
	if sh.State() != Healthy {
		t.Fatalf("after success: %v, want healthy (degraded recovers)", sh.State())
	}
	fail = true
	for i := 0; i < 3; i++ {
		s.Ingest(ctx, [][]int{{0}})
	}
	if sh.State() != Dead {
		t.Fatalf("after 3 straight failures: %v, want dead", sh.State())
	}
	// Dead is terminal for the running instance.
	fail = false
	if _, err := s.Ingest(ctx, [][]int{{0}}); !errors.Is(err, ErrNoShards) {
		t.Fatalf("ingest into all-dead service: %v, want ErrNoShards", err)
	}
	if sh.State() != Dead {
		t.Fatalf("dead shard resurrected to %v", sh.State())
	}
}

func TestEstimateDeadlineCancelsMidBatch(t *testing.T) {
	const d = 10
	s := mustNew(t, testConfig(d))
	bg := context.Background()
	if _, err := s.Ingest(bg, genRows(3000, d, 4)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(bg)
	cancel()
	_, p, err := s.Estimate(ctx, []itemsketch.Itemset{itemsketch.MustItemset(0, 1)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled estimate: %v, want context.Canceled", err)
	}
	if p.Answered != 0 {
		t.Fatalf("cancelled estimate answered %d shards", p.Answered)
	}
	// The cancellation must not have damaged shard health.
	for i := 0; i < s.NumShards(); i++ {
		if st := s.Shard(i).State(); st != Healthy {
			t.Fatalf("shard %d %v after caller-side cancel, want healthy", i, st)
		}
	}
}

func TestIngestCancelDoesNotKillShard(t *testing.T) {
	const d = 4
	cfg := testConfig(d)
	cfg.Shards = 1
	cfg.MaxRetries = 4
	cfg.DeadAfter = 2 // two counted failures would kill the shard
	cfg.IngestFault = func(int, int) error { return errors.New("slow store") }
	var cancel context.CancelFunc
	cfg.Sleep = func(time.Duration) { cancel() } // the caller gives up mid-backoff
	s := mustNew(t, cfg)

	// Each request dies on its own deadline, not on shard trouble: no
	// number of them may advance the failure counter or the state
	// machine (a timeout burst must never kill a healthy shard).
	for i := 0; i < 10; i++ {
		var ctx context.Context
		ctx, cancel = context.WithCancel(context.Background())
		_, err := s.Ingest(ctx, [][]int{{0, 1}})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("ingest %d: %v, want context.Canceled", i, err)
		}
		cancel()
	}
	if st := s.Shard(0).State(); st != Healthy {
		t.Fatalf("shard state %v after cancelled ingests, want healthy", st)
	}
	if n := s.Shard(0).fails.Load(); n != 0 {
		t.Fatalf("failure counter %d after cancelled ingests, want 0", n)
	}
	// And no cancelled batch may have been applied twice via reroute —
	// here the fault never cleared, so nothing must have landed at all.
	if seen := s.Shard(0).Seen(); seen != 0 {
		t.Fatalf("shard saw %d rows from cancelled ingests, want 0", seen)
	}
}

func TestCloseRacesIngestWithoutPanic(t *testing.T) {
	const d = 4
	s := mustNew(t, testConfig(d))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rows := genRows(8, d, seed)
			for {
				if _, err := s.Ingest(context.Background(), rows); err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("ingest racing close: %v, want ErrClosed", err)
					}
					return
				}
			}
		}(uint64(g))
	}
	time.Sleep(2 * time.Millisecond) // let the ingest loops spin up
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if _, err := s.Ingest(context.Background(), [][]int{{0}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("ingest after close: %v, want ErrClosed", err)
	}
}

func TestMineOverMergedShards(t *testing.T) {
	const d = 5
	s := mustNew(t, testConfig(d))
	ctx := context.Background()
	// Attributes 0 and 1 always co-occur; 4 is always alone.
	var rows [][]int
	for i := 0; i < 1200; i++ {
		if i%3 == 0 {
			rows = append(rows, []int{4})
		} else {
			rows = append(rows, []int{0, 1})
		}
	}
	if _, err := s.Ingest(ctx, rows); err != nil {
		t.Fatal(err)
	}
	rs, p, err := s.Mine(ctx, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Degraded() {
		t.Fatalf("partial %v on healthy mine", p)
	}
	want := itemsketch.MustItemset(0, 1)
	found := false
	for _, res := range rs {
		if res.Items.Equal(want) {
			found = true
			if math.Abs(res.Freq-2.0/3.0) > 0.08 {
				t.Errorf("pair frequency %v, want ≈ 2/3", res.Freq)
			}
		}
	}
	if !found {
		t.Fatalf("mine missed the planted pair {0,1}; got %v", rs)
	}
}

func TestHeavyHittersMergedAcrossShards(t *testing.T) {
	const d = 6
	s := mustNew(t, testConfig(d))
	ctx := context.Background()
	var rows [][]int
	for i := 0; i < 900; i++ {
		rows = append(rows, []int{5})
		if i%10 == 0 {
			rows = append(rows, []int{1})
		}
	}
	if _, err := s.Ingest(ctx, rows); err != nil {
		t.Fatal(err)
	}
	items, n, p, err := s.HeavyHitters(ctx, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Degraded() {
		t.Fatalf("partial %v on healthy heavy hitters", p)
	}
	if n != 990 {
		t.Fatalf("merged occurrence total %d, want 990", n)
	}
	if len(items) == 0 || items[0].Item != 5 {
		t.Fatalf("heavy hitters %v, want item 5 on top", items)
	}
}

func TestIngestValidatesAttributeRange(t *testing.T) {
	s := mustNew(t, testConfig(4))
	if _, err := s.Ingest(context.Background(), [][]int{{0, 4}}); !errors.Is(err, itemsketch.ErrInvalidParams) {
		t.Fatalf("out-of-range attribute: %v, want ErrInvalidParams", err)
	}
	if _, err := s.Ingest(context.Background(), [][]int{{-1}}); !errors.Is(err, itemsketch.ErrInvalidParams) {
		t.Fatalf("negative attribute: %v, want ErrInvalidParams", err)
	}
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, itemsketch.ErrInvalidParams) {
		t.Fatalf("NumAttrs-less config: %v, want ErrInvalidParams", err)
	}
	if _, err := New(Config{NumAttrs: 1, Params: itemsketch.Params{K: 3, Eps: 0.1, Delta: 0.1,
		Mode: itemsketch.ForAll, Task: itemsketch.Estimator}}); !errors.Is(err, itemsketch.ErrInvalidParams) {
		t.Fatalf("k > d config: %v, want ErrInvalidParams", err)
	}
}

func TestReadyQuorum(t *testing.T) {
	cfg := testConfig(4)
	cfg.MinReady = 3
	s := mustNew(t, cfg)
	if !s.Ready() {
		t.Fatal("fresh service must be ready")
	}
	s.KillShard(0)
	if !s.Ready() {
		t.Fatal("3 live of 4 meets MinReady=3")
	}
	s.KillShard(1)
	if s.Ready() {
		t.Fatal("2 live of 4 misses MinReady=3")
	}
}
