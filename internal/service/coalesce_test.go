package service

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	itemsketch "repro"
	"repro/internal/rng"
)

// coalesceConfig returns testConfig(d) with the coalescer enabled.
func coalesceConfig(d int, cc CoalesceConfig) Config {
	cfg := testConfig(d)
	cfg.Coalesce = &cc
	return cfg
}

// mixedQueries builds deterministic query batches of mixed itemset
// sizes (1, 2 and 3 attributes) over universe d.
func mixedQueries(n, d int, seed uint64) [][]itemsketch.Itemset {
	r := rng.New(seed)
	out := make([][]itemsketch.Itemset, n)
	for i := range out {
		var ts []itemsketch.Itemset
		for j := 0; j <= i%3; j++ {
			switch r.Intn(3) {
			case 0:
				ts = append(ts, itemsketch.MustItemset(r.Intn(d)))
			case 1:
				a := r.Intn(d)
				ts = append(ts, itemsketch.MustItemset(a, (a+1+r.Intn(d-1))%d))
			default:
				a := r.Intn(d)
				ts = append(ts, itemsketch.MustItemset(a, (a+1)%d, (a+2)%d))
			}
		}
		out[i] = ts
	}
	return out
}

// TestCoalescedEstimatesBitIdenticalToSerial is the concurrency
// equivalence suite: N goroutines push mixed-size query batches
// through the coalescer (wide linger so batches really form) and every
// answer must be bit-identical to the serial single-request fan-out
// over the same snapshots. Run under -race this also proves the
// collector's happens-before discipline.
func TestCoalescedEstimatesBitIdenticalToSerial(t *testing.T) {
	const d, workers, perWorker = 12, 8, 24
	s := mustNew(t, coalesceConfig(d, CoalesceConfig{Linger: 20 * time.Millisecond, MaxBatch: 64}))
	ctx := context.Background()
	if _, err := s.Ingest(ctx, genRows(4000, d, 3)); err != nil {
		t.Fatal(err)
	}

	queries := mixedQueries(workers*perWorker, d, 11)
	// Serial reference: one uncoalesced fan-out per request. The
	// snapshots cannot change between this and the concurrent pass —
	// there is no ingest — so answers must match exactly.
	want := make([][]float64, len(queries))
	for i, ts := range queries {
		ests, p, err := s.estimateDirect(ctx, ts)
		if err != nil || p.Degraded() {
			t.Fatalf("serial reference %d: (%v, %v)", i, p, err)
		}
		want[i] = ests
	}

	var (
		wg    sync.WaitGroup
		start = make(chan struct{})
		got   = make([][]float64, len(queries))
		errs  = make([]error, len(queries))
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for q := 0; q < perWorker; q++ {
				i := w*perWorker + q
				ests, p, err := s.Estimate(ctx, queries[i])
				if err == nil && p.Degraded() {
					err = fmt.Errorf("query %d degraded: %v", i, p)
				}
				got[i], errs[i] = ests, err
			}
		}(w)
	}
	close(start)
	wg.Wait()

	for i := range queries {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if len(got[i]) != len(want[i]) {
			t.Fatalf("query %d: %d answers, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Errorf("query %d itemset %d: coalesced %v != serial %v", i, j, got[i][j], want[i][j])
			}
		}
	}
	st := s.CoalesceStats()
	if st.Requests != workers*perWorker {
		t.Fatalf("coalescer saw %d requests, want %d", st.Requests, workers*perWorker)
	}
	if st.Flushes >= st.Requests {
		t.Errorf("no coalescing happened: %d flushes for %d requests", st.Flushes, st.Requests)
	}
	if st.Coalesced == 0 {
		t.Errorf("no request shared a batch despite %dms linger and %d workers", 20, workers)
	}
}

// TestCoalesceCancelledRequestLeavesBatchClean pins the deadline
// safety contract: a request cancelled while parked in an open batch
// returns its own ctx.Err(), and its co-batched companions still get
// correct, complete answers.
func TestCoalesceCancelledRequestLeavesBatchClean(t *testing.T) {
	const d = 8
	// Linger effectively infinite: only a full batch flushes, so the
	// test controls exactly when the flush happens.
	s := mustNew(t, coalesceConfig(d, CoalesceConfig{Linger: time.Hour, MaxBatch: 2}))
	ctx := context.Background()
	if _, err := s.Ingest(ctx, genRows(2000, d, 5)); err != nil {
		t.Fatal(err)
	}
	tsA := []itemsketch.Itemset{itemsketch.MustItemset(0)}
	tsB := []itemsketch.Itemset{itemsketch.MustItemset(d - 1)}
	want, _, err := s.estimateDirect(ctx, tsB)
	if err != nil {
		t.Fatal(err)
	}

	cctx, cancel := context.WithCancel(ctx)
	aDone := make(chan error, 1)
	go func() {
		_, _, err := s.Estimate(cctx, tsA)
		aDone <- err
	}()
	// Wait until A is parked in the open batch, then cancel it.
	waitFor(t, func() bool {
		s.coal.mu.Lock()
		defer s.coal.mu.Unlock()
		return s.coal.cur != nil && len(s.coal.cur.entries) == 1
	})
	cancel()
	if err := <-aDone; err != context.Canceled {
		t.Fatalf("cancelled request returned %v, want context.Canceled", err)
	}

	// B fills the batch (MaxBatch=2) and flushes it; A's dead entry
	// must be skipped, not answered and not poisoning B.
	got, p, err := s.Estimate(ctx, tsB)
	if err != nil || p.Degraded() {
		t.Fatalf("companion request: (%v, %v)", p, err)
	}
	if got[0] != want[0] {
		t.Errorf("companion answer %v != serial %v after co-batched cancellation", got[0], want[0])
	}
}

// waitFor polls cond until it holds or the test deadline budget burns.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never held")
}

// TestCoalesceMaxBatchOne pins the lower boundary: MaxBatch=1 degrades
// to one fan-out per request — every answer still correct, flushes ==
// requests, nothing coalesced.
func TestCoalesceMaxBatchOne(t *testing.T) {
	const d = 8
	s := mustNew(t, coalesceConfig(d, CoalesceConfig{Linger: time.Hour, MaxBatch: 1}))
	ctx := context.Background()
	if _, err := s.Ingest(ctx, genRows(1500, d, 9)); err != nil {
		t.Fatal(err)
	}
	ts := []itemsketch.Itemset{itemsketch.MustItemset(1), itemsketch.MustItemset(2, 3)}
	want, _, err := s.estimateDirect(ctx, ts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		got, p, err := s.Estimate(ctx, ts)
		if err != nil || p.Degraded() {
			t.Fatalf("request %d: (%v, %v)", i, p, err)
		}
		if got[0] != want[0] || got[1] != want[1] {
			t.Errorf("request %d: %v != serial %v", i, got, want)
		}
	}
	st := s.CoalesceStats()
	if st.Requests != 5 || st.Flushes != 5 || st.Coalesced != 0 {
		t.Errorf("stats = %+v, want 5 requests, 5 flushes, 0 coalesced", st)
	}
}

// TestCoalesceLingerFlushesLoneRequest pins the linger boundary: a
// lone request under an unfilled batch must still be answered once the
// linger window closes, without waiting for companions.
func TestCoalesceLingerFlushesLoneRequest(t *testing.T) {
	const d = 8
	s := mustNew(t, coalesceConfig(d, CoalesceConfig{Linger: 2 * time.Millisecond, MaxBatch: 64}))
	ctx := context.Background()
	if _, err := s.Ingest(ctx, genRows(1500, d, 13)); err != nil {
		t.Fatal(err)
	}
	ts := []itemsketch.Itemset{itemsketch.MustItemset(0, 1)}
	want, _, err := s.estimateDirect(ctx, ts)
	if err != nil {
		t.Fatal(err)
	}
	got, p, err := s.Estimate(ctx, ts)
	if err != nil || p.Degraded() {
		t.Fatalf("lone request: (%v, %v)", p, err)
	}
	if got[0] != want[0] {
		t.Errorf("lone request answer %v != serial %v", got[0], want[0])
	}
	if st := s.CoalesceStats(); st.Flushes != 1 {
		t.Errorf("flushes = %d, want 1 (linger timer)", st.Flushes)
	}
}

// TestCoalesceMaxItemsetsFlushes pins the itemset-budget boundary: a
// request pushing the combined itemset count to MaxItemsets flushes
// immediately instead of lingering.
func TestCoalesceMaxItemsetsFlushes(t *testing.T) {
	const d = 8
	s := mustNew(t, coalesceConfig(d, CoalesceConfig{Linger: time.Hour, MaxBatch: 64, MaxItemsets: 3}))
	ctx := context.Background()
	if _, err := s.Ingest(ctx, genRows(1500, d, 17)); err != nil {
		t.Fatal(err)
	}
	ts := []itemsketch.Itemset{
		itemsketch.MustItemset(0), itemsketch.MustItemset(1), itemsketch.MustItemset(2),
	}
	want, _, err := s.estimateDirect(ctx, ts)
	if err != nil {
		t.Fatal(err)
	}
	// Three itemsets ≥ MaxItemsets: must flush without companions and
	// without the hour-long linger.
	got, p, err := s.Estimate(ctx, ts)
	if err != nil || p.Degraded() {
		t.Fatalf("itemset-budget flush: (%v, %v)", p, err)
	}
	for j := range want {
		if got[j] != want[j] {
			t.Errorf("itemset %d: %v != serial %v", j, got[j], want[j])
		}
	}
}

// TestCoalescePreCancelledRequestNeverEnqueues: a ctx already done on
// entry is rejected before touching a batch.
func TestCoalescePreCancelledRequestNeverEnqueues(t *testing.T) {
	const d = 8
	s := mustNew(t, coalesceConfig(d, CoalesceConfig{Linger: time.Hour, MaxBatch: 8}))
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := s.Estimate(cctx, []itemsketch.Itemset{itemsketch.MustItemset(0)})
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if st := s.CoalesceStats(); st.Requests != 0 {
		t.Errorf("pre-cancelled request entered the coalescer: %+v", st)
	}
}

// TestCoalesceConfigDefaults pins the knob defaults: zero or negative
// fields take 200µs / 32 / 4096, explicit values pass through.
func TestCoalesceConfigDefaults(t *testing.T) {
	got := CoalesceConfig{}.withDefaults()
	want := CoalesceConfig{Linger: 200 * time.Microsecond, MaxBatch: 32, MaxItemsets: 4096}
	if got != want {
		t.Fatalf("zero config defaults = %+v, want %+v", got, want)
	}
	got = CoalesceConfig{Linger: -1, MaxBatch: -2, MaxItemsets: -3}.withDefaults()
	if got != want {
		t.Fatalf("negative config defaults = %+v, want %+v", got, want)
	}
	explicit := CoalesceConfig{Linger: time.Millisecond, MaxBatch: 7, MaxItemsets: 9}
	if got := explicit.withDefaults(); got != explicit {
		t.Fatalf("explicit config rewritten: %+v", got)
	}
}

// TestCoalesceStatsWithoutCoalescer: a service built without
// Config.Coalesce answers directly and reports all-zero stats.
func TestCoalesceStatsWithoutCoalescer(t *testing.T) {
	s := mustNew(t, testConfig(4))
	ctx := context.Background()
	if _, err := s.Ingest(ctx, genRows(500, 4, 3)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Estimate(ctx, []itemsketch.Itemset{itemsketch.MustItemset(0)}); err != nil {
		t.Fatal(err)
	}
	if st := s.CoalesceStats(); st != (CoalesceStats{}) {
		t.Fatalf("uncoalesced service reported stats %+v", st)
	}
}

// TestBatchContextDeadlines pins the shared fan-out bound: all members
// bounded → the batch carries the latest member deadline; any member
// unbounded → the batch is unbounded too.
func TestBatchContextDeadlines(t *testing.T) {
	near, cancelNear := context.WithDeadline(context.Background(), time.Now().Add(time.Minute))
	defer cancelNear()
	far, cancelFar := context.WithDeadline(context.Background(), time.Now().Add(time.Hour))
	defer cancelFar()

	fctx, cancel := batchContext([]*estEntry{{ctx: near}, {ctx: far}})
	d, ok := fctx.Deadline()
	cancel()
	farD, _ := far.Deadline()
	if !ok || !d.Equal(farD) {
		t.Fatalf("batch deadline = (%v, %v), want the latest member deadline %v", d, ok, farD)
	}

	fctx, cancel = batchContext([]*estEntry{{ctx: near}, {ctx: context.Background()}})
	_, ok = fctx.Deadline()
	cancel()
	if ok {
		t.Fatal("one unbounded member must leave the batch unbounded")
	}
}
