package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	itemsketch "repro"
	"repro/internal/countsketch"
	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/rng"
	"repro/internal/stream"
)

// Shard is one independent ingest/serve unit: a worker goroutine
// applies row batches to a streaming reservoir (and a Misra–Gries
// summary for the heavy-hitter path), publishing an immutable snapshot
// after every batch. Queries only ever read snapshots, so the ingest
// hot path and the query fan-out never share mutable state — the
// property that lets the chaos suite run estimate/mine load against
// live ingest under -race.
type Shard struct {
	id  int
	svc *Service
	ch  chan ingestReq

	mu        sync.Mutex // guards res, mg, cs, win, dmg, sinceCkpt, jrng during ingest/checkpoint
	res       *stream.Reservoir
	mg        *stream.MisraGries
	cs        *countsketch.Sketch       // nil unless Config.CountSketch is set
	win       *stream.WindowedReservoir // nil unless Config.Window is set
	dmg       *stream.DecayedMisraGries // nil unless Config.Window enables DecayK
	sinceCkpt int
	jrng      *rng.RNG // backoff jitter + recovery seeds
	winSeed   uint64   // window reservoir seed, kept for bootstrap rebuilds

	snap        atomic.Pointer[snapshot]
	state       atomic.Int32
	fails       atomic.Int32 // consecutive failures
	checkpoints atomic.Int64
	lastErr     atomic.Pointer[string]
}

// ingestReq is one routed batch with its completion channel.
type ingestReq struct {
	ctx  context.Context
	rows [][]int
	done chan error
}

// snapshot is the immutable query view of a shard: a frozen reservoir
// clone (for read-side merging), its column-indexed sample database
// behind a concurrency-safe Querier, the rows-seen weight, and the
// frozen heavy-hitter summary.
type snapshot struct {
	res  *stream.Reservoir
	db   *dataset.Database
	q    query.Querier
	seen int64
	mg   *stream.MisraGries
	cs   *countsketch.Sketch
	win  *stream.WindowedReservoir
	dmg  *stream.DecayedMisraGries
}

func newShard(svc *Service, id int, reservoirSeed, jitterSeed, windowSeed uint64) (*Shard, error) {
	res, err := stream.NewReservoir(svc.cfg.NumAttrs, svc.cfg.SampleCapacity, reservoirSeed)
	if err != nil {
		return nil, err
	}
	sh := &Shard{
		id:      id,
		svc:     svc,
		ch:      make(chan ingestReq, 16),
		res:     res,
		jrng:    rng.New(jitterSeed),
		winSeed: windowSeed,
	}
	if svc.cfg.HeavyK > 0 {
		if sh.mg, err = stream.NewMisraGries(svc.cfg.HeavyK); err != nil {
			return nil, err
		}
	}
	if svc.csCfg != nil {
		if sh.cs, err = countsketch.New(*svc.csCfg); err != nil {
			return nil, err
		}
	}
	if wc := svc.cfg.Window; wc != nil {
		sh.win, err = stream.NewWindowedReservoir(svc.cfg.NumAttrs, wc.Rows, wc.Buckets,
			wc.SampleCapacity, windowSeed, svc.cfg.Params)
		if err != nil {
			return nil, err
		}
		if wc.DecayK >= 2 {
			sh.dmg, err = stream.NewDecayedMisraGries(svc.cfg.NumAttrs, wc.DecayK, wc.DecayLambda, itemsketch.Params{})
			if err != nil {
				return nil, err
			}
		}
	}
	sh.publishSnapshot()
	return sh, nil
}

// run is the shard worker: it serializes ingest application for this
// shard until the service closes its channel.
func (sh *Shard) run() {
	defer sh.svc.wg.Done()
	for req := range sh.ch {
		req.done <- sh.ingest(req.ctx, req.rows)
	}
}

// submit hands a batch to the shard worker and waits for the outcome.
func (sh *Shard) submit(ctx context.Context, rows [][]int) error {
	if sh.State() == Dead {
		return fmt.Errorf("%w: shard %d", ErrShardDead, sh.id)
	}
	req := ingestReq{ctx: ctx, rows: rows, done: make(chan error, 1)}
	// The send runs under the service's close lock: Close takes the
	// write side before closing the worker channels, so a submit racing
	// shutdown gets ErrClosed instead of a send-on-closed-channel panic.
	sh.svc.closeMu.RLock()
	if sh.svc.closed.Load() {
		sh.svc.closeMu.RUnlock()
		return fmt.Errorf("%w: shard %d", ErrClosed, sh.id)
	}
	select {
	case sh.ch <- req:
		sh.svc.closeMu.RUnlock()
	case <-ctx.Done():
		sh.svc.closeMu.RUnlock()
		return ctx.Err()
	}
	select {
	case err := <-req.done:
		return err
	case <-ctx.Done():
		// The worker may have completed the application in the same
		// instant the deadline fired; prefer the real outcome so a batch
		// that was applied is never reported failed (and never re-routed
		// into a duplicate application).
		select {
		case err := <-req.done:
			return err
		default:
			return ctx.Err()
		}
	}
}

// ingest applies one batch under the retry policy: the fault hook (the
// fallible storage/transport stand-in) is consulted per attempt, and
// exhausted retries degrade the shard. On success the snapshot is
// republished and the auto-checkpoint counter advances.
func (sh *Shard) ingest(ctx context.Context, rows [][]int) error {
	if sh.State() == Dead {
		return fmt.Errorf("%w: shard %d", ErrShardDead, sh.id)
	}
	err := sh.withRetry(ctx, func(attempt int) error {
		if hook := sh.svc.cfg.IngestFault; hook != nil {
			if herr := hook(sh.id, attempt); herr != nil {
				return herr
			}
		}
		return nil
	})
	if err != nil {
		// A cancelled or timed-out request is the caller's budget, not
		// shard trouble: counting it toward DeadAfter would let a burst
		// of client timeouts kill a healthy shard (mirrors Estimate's
		// ctx guard).
		if ctx.Err() == nil {
			sh.recordFailure(err)
		}
		return err
	}
	sh.mu.Lock()
	for _, row := range rows {
		sh.res.AddAttrs(row...)
		if sh.mg != nil {
			for _, a := range row {
				sh.mg.Add(a)
			}
		}
		if sh.cs != nil {
			for _, a := range row {
				sh.cs.Add(a)
			}
		}
		if sh.win != nil {
			// A rotation means the window advanced one bucket: the decayed
			// summary ticks on the same boundary, then sees the row that
			// opened the new epoch.
			if rotated := sh.win.AddAttrs(row...); rotated && sh.dmg != nil {
				sh.dmg.Tick()
			}
			if sh.dmg != nil {
				for _, a := range row {
					sh.dmg.Add(a)
				}
			}
		}
	}
	sh.sinceCkpt += len(rows)
	due := sh.svc.cfg.CheckpointEvery > 0 && sh.sinceCkpt >= sh.svc.cfg.CheckpointEvery &&
		sh.svc.cfg.CheckpointDir != ""
	sh.publishSnapshotLocked()
	sh.mu.Unlock()
	sh.recordSuccess()
	if due {
		// Auto-checkpoint failures degrade the shard (recordFailure
		// inside Checkpoint) but never fail the ingest that triggered
		// them: the rows are in memory, durability is behind by one
		// interval, and the next checkpoint retries.
		sh.Checkpoint()
	}
	return nil
}

// publishSnapshot / publishSnapshotLocked freeze the current reservoir
// and heavy-hitter state into a new immutable snapshot.
func (sh *Shard) publishSnapshot() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.publishSnapshotLocked()
}

func (sh *Shard) publishSnapshotLocked() {
	frozen := sh.res.Clone()
	db := frozen.Database()
	db.BuildColumnIndex()
	var mg *stream.MisraGries
	if sh.mg != nil {
		mg = sh.mg.Clone()
	}
	var cs *countsketch.Sketch
	if sh.cs != nil {
		cs = sh.cs.Clone()
	}
	var win *stream.WindowedReservoir
	if sh.win != nil {
		win = sh.win.Clone()
	}
	var dmg *stream.DecayedMisraGries
	if sh.dmg != nil {
		dmg = sh.dmg.Clone()
	}
	sh.snap.Store(&snapshot{
		res:  frozen,
		db:   db,
		q:    query.FromDatabase(db),
		seen: frozen.Seen(),
		mg:   mg,
		cs:   cs,
		win:  win,
		dmg:  dmg,
	})
}

// snapshot returns the current immutable query view (never nil).
func (sh *Shard) snapshot() *snapshot { return sh.snap.Load() }

// State returns the shard's health state.
func (sh *Shard) State() Health { return Health(sh.state.Load()) }

// setState swaps the health state; any transition across the Dead
// boundary re-homes or restores the shard's ingest slot.
func (sh *Shard) setState(h Health) {
	old := Health(sh.state.Swap(int32(h)))
	if (old == Dead) != (h == Dead) {
		sh.svc.recomputeRouting()
	}
}

// Seen returns the rows this shard has observed.
func (sh *Shard) Seen() int64 { return sh.snapshot().seen }

// recordFailure advances the consecutive-failure counter and the
// health state machine: DegradeAfter failures mark the shard Degraded,
// DeadAfter mark it Dead. A dead shard stays dead: no failure or
// success path resurrects it. The only sanctioned way back is an
// explicit bootstrap from a peer's replication envelope
// (Service.BootstrapShard → revive), or a full restart with
// checkpoint replay.
func (sh *Shard) recordFailure(err error) {
	msg := err.Error()
	sh.lastErr.Store(&msg)
	n := int(sh.fails.Add(1))
	switch {
	case n >= sh.svc.cfg.DeadAfter:
		sh.setState(Dead)
	case n >= sh.svc.cfg.DegradeAfter:
		// Never promote Dead back to Degraded on a late failure.
		sh.state.CompareAndSwap(int32(Healthy), int32(Degraded))
	}
}

// recordSuccess resets the failure streak and recovers Degraded (but
// never Dead) back to Healthy.
func (sh *Shard) recordSuccess() {
	sh.fails.Store(0)
	sh.state.CompareAndSwap(int32(Degraded), int32(Healthy))
}

func (sh *Shard) lastError() string {
	if p := sh.lastErr.Load(); p != nil {
		return *p
	}
	return ""
}

// withRetry runs f under the bounded exponential-backoff policy with
// full seeded jitter: attempt a sleeps U[0, min(RetryMax,
// RetryBase·2^a)]. The context is respected between attempts, so a
// cancelled request never burns the whole budget.
func (sh *Shard) withRetry(ctx context.Context, f func(attempt int) error) error {
	cfg := sh.svc.cfg
	var last error
	for attempt := 0; attempt < cfg.MaxRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if last = f(attempt); last == nil {
			return nil
		}
		if attempt == cfg.MaxRetries-1 {
			break
		}
		if err := sh.backoff(ctx, attempt); err != nil {
			return err
		}
	}
	return fmt.Errorf("%w after %d attempts: %w", ErrRetriesExhausted, cfg.MaxRetries, last)
}

// revive rebuilds a dead shard from a replication sample and returns
// it to service — the shard half of Service.BootstrapShard. The
// reservoir is restored exactly like checkpoint recovery; the side
// summaries (MG, count sketch, window, decayed MG) restart empty with
// their original configuration and seeds, since the envelope carries
// only the row sample. The worker goroutine never stopped (a dead
// shard merely refuses submissions), so flipping the state back to
// Healthy is all the restart there is.
func (sh *Shard) revive(sample *dataset.Database, seen int64) error {
	cfg := sh.svc.cfg
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// Recheck under the ingest lock: two concurrent bootstraps must not
	// both restore, and a revive racing ingest application cannot
	// interleave with it.
	if sh.State() != Dead {
		return fmt.Errorf("%w: shard %d is %s; only a dead shard can be bootstrapped", itemsketch.ErrInvalidParams, sh.id, sh.State())
	}
	res, err := stream.RestoreReservoir(sample, cfg.SampleCapacity, seen, sh.jrng.Uint64())
	if err != nil {
		return err
	}
	var mg *stream.MisraGries
	if cfg.HeavyK > 0 {
		if mg, err = stream.NewMisraGries(cfg.HeavyK); err != nil {
			return err
		}
	}
	var cs *countsketch.Sketch
	if sh.svc.csCfg != nil {
		if cs, err = countsketch.New(*sh.svc.csCfg); err != nil {
			return err
		}
	}
	var win *stream.WindowedReservoir
	var dmg *stream.DecayedMisraGries
	if wc := cfg.Window; wc != nil {
		win, err = stream.NewWindowedReservoir(cfg.NumAttrs, wc.Rows, wc.Buckets,
			wc.SampleCapacity, sh.winSeed, cfg.Params)
		if err != nil {
			return err
		}
		if wc.DecayK >= 2 {
			dmg, err = stream.NewDecayedMisraGries(cfg.NumAttrs, wc.DecayK, wc.DecayLambda, itemsketch.Params{})
			if err != nil {
				return err
			}
		}
	}
	sh.res, sh.mg, sh.cs, sh.win, sh.dmg = res, mg, cs, win, dmg
	sh.sinceCkpt = 0
	sh.publishSnapshotLocked()
	sh.fails.Store(0)
	sh.lastErr.Store(nil)
	sh.setState(Healthy) // re-homes the slot back via recomputeRouting
	return nil
}

// backoff sleeps the jittered delay for one failed attempt.
func (sh *Shard) backoff(ctx context.Context, attempt int) error {
	cfg := sh.svc.cfg
	ceil := cfg.RetryBase << uint(attempt)
	if ceil > cfg.RetryMax || ceil <= 0 {
		ceil = cfg.RetryMax
	}
	sh.mu.Lock()
	d := time.Duration(sh.jrng.Float64() * float64(ceil))
	sh.mu.Unlock()
	if cfg.Sleep != nil {
		cfg.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
