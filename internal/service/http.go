package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	itemsketch "repro"
	"repro/internal/core"
)

// Handler returns the service's HTTP API:
//
//	POST /v1/ingest        {"rows":[[0,2],[1]]}            → {"accepted":n,"shards":{...}}
//	POST /v1/estimate      {"itemsets":[[0,1],[2]]}        → {"estimates":[...],"shards":{...}}
//	POST /v1/mine          {"min_support":0.1,"max_k":3}   → {"results":[...],"shards":{...}}
//	POST /v1/heavyhitters  {"phi":0.2}                     → {"items":[...],"n":N,"source":"...","shards":{...}}
//	POST /v1/checkpoint                                    → {"shards":{...}}
//	POST /v1/kill?shard=N                                  → {"shards":{...}}  (chaos lever)
//	POST /v1/rehome?shard=N&from=M                         → {"rehomed":N,"from":M}
//	GET  /v1/shards/{id}/sketch                            → sketch envelope bytes
//	PUT  /v1/shards/{id}/sketch                            → bootstrap a dead shard from envelope bytes
//	GET  /healthz                                          → per-shard health report
//	GET  /readyz                                           → 200 iff the live quorum is met
//
// GET and PUT on /v1/shards/{id}/sketch are the two halves of the
// replication path: GET streams a live shard's sample as a sketch
// envelope (with its stream length in X-Shard-Seen), and PUT feeds the
// same bytes (and optional X-Shard-Seen request header) to
// BootstrapShard, reviving a dead shard. POST /v1/rehome does both
// sides in-process for single-node operation.
//
// Every response carries the degradation headers (X-Shards-Answered,
// and X-Shards-Missing when any shard is missing) and every JSON body
// — including every error body — carries the "shards" object, so a
// client can always tell a degraded answer from a complete one and a
// total failure from a transient one. Config.RequestTimeout threads a
// deadline into the request context, which EstimateMany observes
// mid-batch.
//
// When Config.Window is set, /v1/estimate and /v1/heavyhitters accept
// "window":true to answer over the trailing window (EstimateWindow /
// HeavyHittersWindow) instead of the whole stream; without a window
// the flag is a 409 (ErrNoWindow).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ingest", s.handleIngest)
	mux.HandleFunc("/v1/estimate", s.handleEstimate)
	mux.HandleFunc("/v1/mine", s.handleMine)
	mux.HandleFunc("/v1/heavyhitters", s.handleHeavyHitters)
	mux.HandleFunc("/v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("/v1/kill", s.handleKill)
	mux.HandleFunc("/v1/rehome", s.handleRehome)
	mux.HandleFunc("/v1/shards/", s.handleShardSketch)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	return mux
}

// requestContext applies the configured per-request deadline.
func (s *Service) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	}
	return r.Context(), func() {}
}

// currentPartial reports the live/dead split outside any query — the
// shards object attached to responses that have no per-query fan-out
// (ingest, checkpoint, admin, errors).
func (s *Service) currentPartial() Partial {
	p := Partial{Total: len(s.shards)}
	for _, sh := range s.shards {
		if sh.State() != Dead {
			p.Answered++
		} else {
			p.Missing = append(p.Missing, sh.id)
		}
	}
	return p
}

// setShardHeaders attaches the degradation headers.
func setShardHeaders(w http.ResponseWriter, p Partial) {
	w.Header().Set("X-Shards-Answered", p.String())
	if len(p.Missing) > 0 {
		ids := make([]string, len(p.Missing))
		for i, id := range p.Missing {
			ids[i] = strconv.Itoa(id)
		}
		w.Header().Set("X-Shards-Missing", strings.Join(ids, ","))
	}
}

// writeJSON emits one JSON response with the degradation headers.
func writeJSON(w http.ResponseWriter, status int, p Partial, body map[string]any) {
	setShardHeaders(w, p)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body["shards"] = p
	_ = json.NewEncoder(w).Encode(body)
}

// writeError maps err to an HTTP status and emits the error body —
// which still carries the shards object, so no failure response hides
// the degradation state.
func writeError(w http.ResponseWriter, p Partial, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = 499 // client closed request
	case errors.Is(err, ErrNoShards), errors.Is(err, ErrShardDead), errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrNoWindow):
		status = http.StatusConflict
	case errors.Is(err, itemsketch.ErrInvalidParams), errors.Is(err, itemsketch.ErrWrongItemsetSize):
		status = http.StatusBadRequest
	case errors.Is(err, ErrRetriesExhausted):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, p, map[string]any{"error": err.Error()})
}

// decodeBody decodes one JSON request body, rejecting unknown fields.
func (s *Service) decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeJSON(w, http.StatusBadRequest, s.currentPartial(),
			map[string]any{"error": "bad request body: " + err.Error()})
		return false
	}
	return true
}

// requirePost guards the mutating/query endpoints.
func (s *Service) requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, s.currentPartial(),
			map[string]any{"error": "use POST"})
		return false
	}
	return true
}

func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	var req struct {
		Rows [][]int `json:"rows"`
	}
	if !s.decodeBody(w, r, &req) {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	accepted, err := s.Ingest(ctx, req.Rows)
	if err != nil {
		writeError(w, s.currentPartial(), err)
		return
	}
	writeJSON(w, http.StatusOK, s.currentPartial(), map[string]any{"accepted": accepted})
}

func (s *Service) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	var req struct {
		Itemsets [][]int `json:"itemsets"`
		// Window answers over the trailing window (Config.Window) instead
		// of the whole stream.
		Window bool `json:"window"`
	}
	if !s.decodeBody(w, r, &req) {
		return
	}
	ts := make([]itemsketch.Itemset, len(req.Itemsets))
	for i, attrs := range req.Itemsets {
		t, err := itemsketch.NewItemset(attrs...)
		if err != nil {
			writeError(w, s.currentPartial(),
				fmt.Errorf("%w: itemset %d: %v", itemsketch.ErrInvalidParams, i, err))
			return
		}
		if t.MaxAttr() >= s.cfg.NumAttrs {
			writeError(w, s.currentPartial(),
				fmt.Errorf("%w: itemset %d references attribute %d beyond universe %d",
					itemsketch.ErrInvalidParams, i, t.MaxAttr(), s.cfg.NumAttrs))
			return
		}
		ts[i] = t
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	estimate := s.Estimate
	if req.Window {
		estimate = s.EstimateWindow
	}
	ests, p, err := estimate(ctx, ts)
	if err != nil {
		writeError(w, p, err)
		return
	}
	writeJSON(w, http.StatusOK, p, map[string]any{"estimates": ests, "window": req.Window})
}

// minedItemset is the JSON shape of one mining result.
type minedItemset struct {
	Attrs []int   `json:"attrs"`
	Freq  float64 `json:"freq"`
}

func (s *Service) handleMine(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	var req struct {
		MinSupport float64 `json:"min_support"`
		MaxK       int     `json:"max_k"`
	}
	if !s.decodeBody(w, r, &req) {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	rs, p, err := s.Mine(ctx, req.MinSupport, req.MaxK)
	if err != nil {
		writeError(w, p, err)
		return
	}
	out := make([]minedItemset, len(rs))
	for i, res := range rs {
		out[i] = minedItemset{Attrs: append([]int{}, res.Items.Attrs()...), Freq: res.Freq}
	}
	writeJSON(w, http.StatusOK, p, map[string]any{"results": out})
}

func (s *Service) handleHeavyHitters(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	var req struct {
		Phi float64 `json:"phi"`
		// Window thresholds the decayed recent stream (Config.Window)
		// instead of the whole-stream summary.
		Window bool `json:"window"`
	}
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Phi <= 0 || req.Phi > 1 {
		writeError(w, s.currentPartial(),
			fmt.Errorf("%w: phi must be in (0,1], got %v", itemsketch.ErrInvalidParams, req.Phi))
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	heavy := s.HeavyHitters
	source := s.HeavyHitterSource()
	if req.Window {
		heavy = s.HeavyHittersWindow
		source = "decayed-misra-gries"
	}
	items, n, p, err := heavy(ctx, req.Phi)
	if err != nil {
		writeError(w, p, err)
		return
	}
	if items == nil {
		items = []HeavyHitter{}
	}
	writeJSON(w, http.StatusOK, p, map[string]any{
		"items": items, "n": n, "source": source})
}

func (s *Service) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	if s.cfg.CheckpointDir == "" {
		writeJSON(w, http.StatusConflict, s.currentPartial(),
			map[string]any{"error": "checkpointing is not configured"})
		return
	}
	if err := s.Checkpoint(); err != nil {
		writeError(w, s.currentPartial(), err)
		return
	}
	writeJSON(w, http.StatusOK, s.currentPartial(), map[string]any{"checkpointed": true})
}

func (s *Service) handleKill(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	id, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil || id < 0 || id >= len(s.shards) {
		writeJSON(w, http.StatusBadRequest, s.currentPartial(),
			map[string]any{"error": "kill needs ?shard=<0.." + strconv.Itoa(len(s.shards)-1) + ">"})
		return
	}
	s.KillShard(id)
	writeJSON(w, http.StatusOK, s.currentPartial(), map[string]any{"killed": id})
}

// handleRehome bootstraps dead shard ?shard= from live peer ?from= in
// process — the single-node form of the GET→PUT replication pair.
func (s *Service) handleRehome(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	id, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil || id < 0 || id >= len(s.shards) {
		writeJSON(w, http.StatusBadRequest, s.currentPartial(),
			map[string]any{"error": "rehome needs ?shard=<0.." + strconv.Itoa(len(s.shards)-1) + ">"})
		return
	}
	from, err := strconv.Atoi(r.URL.Query().Get("from"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, s.currentPartial(),
			map[string]any{"error": "rehome needs ?from=<live peer shard>"})
		return
	}
	if err := s.RehomeFromPeer(id, from); err != nil {
		writeError(w, s.currentPartial(), err)
		return
	}
	writeJSON(w, http.StatusOK, s.currentPartial(), map[string]any{"rehomed": id, "from": from})
}

// handleShardSketch is the shard replication endpoint. GET streams one
// shard's current sample as a standard sketch envelope — the
// replication/backfill read path; the snapshot's reservoir is cloned
// first so the envelope encoder never touches a database other queries
// are reading. PUT accepts the same envelope bytes and bootstraps a
// dead shard from them (BootstrapShard), honoring an X-Shard-Seen
// request header as the restored stream-length counter.
func (s *Service) handleShardSketch(w http.ResponseWriter, r *http.Request) {
	rest, ok := strings.CutPrefix(r.URL.Path, "/v1/shards/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	idStr, ok := strings.CutSuffix(rest, "/sketch")
	if !ok {
		http.NotFound(w, r)
		return
	}
	id, err := strconv.Atoi(idStr)
	if err != nil || id < 0 || id >= len(s.shards) {
		writeJSON(w, http.StatusNotFound, s.currentPartial(),
			map[string]any{"error": "no such shard"})
		return
	}
	switch r.Method {
	case http.MethodGet:
		sh := s.shards[id]
		if sh.State() == Dead {
			writeError(w, s.currentPartial(), fmt.Errorf("%w: shard %d", ErrShardDead, id))
			return
		}
		snap := sh.snapshot()
		sk, err := core.SubsampleFromSample(snap.res.Database(), s.cfg.Params)
		if err != nil {
			writeError(w, s.currentPartial(), err)
			return
		}
		setShardHeaders(w, s.currentPartial())
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Shard-Seen", strconv.FormatInt(snap.seen, 10))
		if _, err := itemsketch.MarshalTo(w, sk); err != nil {
			// Headers are gone; all we can do is log through the shard.
			sh.recordFailure(err)
		}
	case http.MethodPut:
		var seen int64
		if h := r.Header.Get("X-Shard-Seen"); h != "" {
			v, err := strconv.ParseInt(h, 10, 64)
			if err != nil || v < 0 {
				writeJSON(w, http.StatusBadRequest, s.currentPartial(),
					map[string]any{"error": "bad X-Shard-Seen header: " + h})
				return
			}
			seen = v
		}
		if err := s.BootstrapShard(id, r.Body, seen); err != nil {
			writeError(w, s.currentPartial(), err)
			return
		}
		writeJSON(w, http.StatusOK, s.currentPartial(), map[string]any{"bootstrapped": id})
	default:
		w.Header().Set("Allow", "GET, PUT")
		writeJSON(w, http.StatusMethodNotAllowed, s.currentPartial(),
			map[string]any{"error": "use GET or PUT"})
	}
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	p := s.currentPartial()
	status := http.StatusOK
	if !s.Ready() {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, p, map[string]any{
		"ready":  s.Ready(),
		"report": s.HealthReport(),
	})
}

func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	p := s.currentPartial()
	if !s.Ready() {
		writeJSON(w, http.StatusServiceUnavailable, p,
			map[string]any{"ready": false, "error": ErrNoShards.Error()})
		return
	}
	writeJSON(w, http.StatusOK, p, map[string]any{"ready": true})
}
