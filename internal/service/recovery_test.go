package service

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	itemsketch "repro"
	"repro/internal/faultio"
)

// checkpointImage builds a service, ingests rows, checkpoints shard 0
// and returns the raw checkpoint bytes plus the shard's seen counter.
func checkpointImage(t *testing.T, dir string) ([]byte, int64) {
	t.Helper()
	cfg := testConfig(6)
	cfg.Shards = 1
	cfg.SampleCapacity = 64
	cfg.CheckpointDir = dir
	s := mustNew(t, cfg)
	if _, err := s.Ingest(context.Background(), genRows(500, 6, 11)); err != nil {
		t.Fatal(err)
	}
	if err := s.Shard(0).Checkpoint(); err != nil {
		t.Fatal(err)
	}
	seen := s.Shard(0).Seen()
	raw, err := os.ReadFile(filepath.Join(dir, "shard-0.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	return raw, seen
}

func TestRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const d = 6
	cfg := testConfig(d)
	cfg.CheckpointDir = dir
	ctx := context.Background()

	first, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Ingest(ctx, genRows(3000, d, 9)); err != nil {
		t.Fatal(err)
	}
	wantEsts, _, err := first.Estimate(ctx, []itemsketch.Itemset{itemsketch.MustItemset(d - 1)})
	if err != nil {
		t.Fatal(err)
	}
	var wantSeen int64
	for i := 0; i < first.NumShards(); i++ {
		wantSeen += first.Shard(i).Seen()
	}
	if err := first.Close(); err != nil { // Close takes the final checkpoints
		t.Fatal(err)
	}

	second := mustNew(t, cfg)
	var gotSeen int64
	for i := 0; i < second.NumShards(); i++ {
		if st := second.Shard(i).State(); st != Healthy {
			t.Fatalf("recovered shard %d is %v, want healthy", i, st)
		}
		gotSeen += second.Shard(i).Seen()
	}
	if gotSeen != wantSeen {
		t.Fatalf("recovered %d rows seen, want %d", gotSeen, wantSeen)
	}
	gotEsts, p, err := second.Estimate(ctx, []itemsketch.Itemset{itemsketch.MustItemset(d - 1)})
	if err != nil {
		t.Fatal(err)
	}
	if p.Degraded() {
		t.Fatalf("recovered service degraded: %v", p)
	}
	if math.Abs(gotEsts[0]-wantEsts[0]) > 1e-12 {
		t.Fatalf("recovered estimate %v, want %v (samples must survive the restart bit-exact)", gotEsts[0], wantEsts[0])
	}
	// The restored reservoirs must keep streaming.
	if _, err := second.Ingest(ctx, genRows(100, d, 10)); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryKillAtEveryByteOffset is the acceptance property: a
// checkpoint stream cut at EVERY byte offset either recovers (only at
// the full length) or fails cleanly wrapping ErrTruncatedStream —
// never a silent wrong recovery, never a bare decode panic.
func TestRecoveryKillAtEveryByteOffset(t *testing.T) {
	raw, seen := checkpointImage(t, t.TempDir())
	for off := 0; off <= len(raw); off++ {
		rec, err := readCheckpoint(bytes.NewReader(raw[:off]), 0, 6, 64, nil, nil, nil)
		if off == len(raw) {
			if err != nil {
				t.Fatalf("full image failed to recover: %v", err)
			}
			if rec.res.Seen() != seen {
				t.Fatalf("recovered seen %d, want %d", rec.res.Seen(), seen)
			}
			break
		}
		if err == nil {
			t.Fatalf("offset %d/%d: truncated checkpoint decoded without error", off, len(raw))
		}
		if !errors.Is(err, itemsketch.ErrTruncatedStream) {
			t.Fatalf("offset %d/%d: error %v does not wrap ErrTruncatedStream", off, len(raw), err)
		}
		if !errors.Is(err, itemsketch.ErrCorruptSketch) {
			t.Fatalf("offset %d/%d: error %v does not wrap ErrCorruptSketch", off, len(raw), err)
		}
	}
}

// TestRecoveryFaultCorruptEveryByte flips each byte of the image in
// turn: every flip must be detected by one of the checksums (header
// CRC, envelope chunk CRCs, heavy-hitter section CRC) or the state
// validators — a corrupt checkpoint never silently recovers. Flips in
// the envelope's flate-compressed payload may surface as truncation
// (the decompressor hits a broken stream early); both classifications
// wrap ErrCorruptSketch.
func TestRecoveryFaultCorruptEveryByte(t *testing.T) {
	raw, _ := checkpointImage(t, t.TempDir())
	for off := 0; off < len(raw); off++ {
		r := faultio.NewReader(bytes.NewReader(raw), faultio.WithCorruptByte(int64(off), 0xA5))
		_, err := readCheckpoint(r, 0, 6, 64, nil, nil, nil)
		if err == nil {
			t.Fatalf("flip at %d/%d: corrupt checkpoint recovered silently", off, len(raw))
		}
		if !errors.Is(err, itemsketch.ErrCorruptSketch) && !errors.Is(err, itemsketch.ErrUnsupportedVersion) {
			t.Fatalf("flip at %d/%d: %v is not a corruption classification", off, len(raw), err)
		}
	}
}

// TestRecoveryFaultTransportErrorsPassBare: a failing disk read (not a
// short file) must surface as itself so callers can distinguish media
// trouble from torn state.
func TestRecoveryFaultTransportErrorsPassBare(t *testing.T) {
	raw, _ := checkpointImage(t, t.TempDir())
	for _, off := range []int64{0, 10, ckptHeaderSize, int64(len(raw) / 2), int64(len(raw) - 1)} {
		r := faultio.NewReader(bytes.NewReader(raw), faultio.WithFailAt(off, nil))
		_, err := readCheckpoint(r, 0, 6, 64, nil, nil, nil)
		if !errors.Is(err, faultio.ErrInjected) {
			t.Fatalf("fail at %d: %v, want the injected transport error", off, err)
		}
	}
}

// TestRecoveryTornWriteKeepsPreviousCheckpoint: a checkpoint whose
// write dies at any offset leaves the previous image live, so a
// restart recovers the older consistent state.
func TestRecoveryTornWriteKeepsPreviousCheckpoint(t *testing.T) {
	dir := t.TempDir()
	const d = 6
	cfg := testConfig(d)
	cfg.Shards = 1
	cfg.SampleCapacity = 64
	cfg.CheckpointDir = dir
	cfg.MaxRetries = 1
	ctx := context.Background()

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(ctx, genRows(300, d, 12)); err != nil {
		t.Fatal(err)
	}
	if err := s.Shard(0).Checkpoint(); err != nil {
		t.Fatal(err)
	}
	goodSeen := s.Shard(0).Seen()
	good, err := os.ReadFile(filepath.Join(dir, "shard-0.ckpt"))
	if err != nil {
		t.Fatal(err)
	}

	// Ingest more, then tear the next checkpoint at assorted offsets.
	if _, err := s.Ingest(ctx, genRows(200, d, 13)); err != nil {
		t.Fatal(err)
	}
	for _, off := range []int64{0, 1, ckptHeaderSize - 1, ckptHeaderSize + 7, int64(len(good)) - 2} {
		s.cfg.CheckpointWriteWrap = func(w io.Writer) io.Writer {
			return faultio.NewWriter(w, faultio.WithFailAt(off, nil))
		}
		if err := s.Shard(0).Checkpoint(); !errors.Is(err, faultio.ErrInjected) {
			t.Fatalf("tear at %d: checkpoint error %v, want injected", off, err)
		}
		now, rerr := os.ReadFile(filepath.Join(dir, "shard-0.ckpt"))
		if rerr != nil {
			t.Fatal(rerr)
		}
		if !bytes.Equal(now, good) {
			t.Fatalf("tear at %d clobbered the previous checkpoint", off)
		}
	}
	s.cfg.CheckpointWriteWrap = nil
	s.Close()

	// The torn attempts degraded the shard but the old image recovers.
	re := mustNew(t, cfg)
	if got := re.Shard(0).Seen(); got < goodSeen {
		t.Fatalf("recovered seen %d, want at least the first checkpoint's %d", got, goodSeen)
	}
}

func TestRecoveryStrictVsLenient(t *testing.T) {
	dir := t.TempDir()
	raw, _ := checkpointImage(t, dir)
	// Truncate the on-disk checkpoint to simulate a torn file that
	// somehow made it to disk (e.g. a copy from a dying machine).
	if err := os.WriteFile(filepath.Join(dir, "shard-0.ckpt"), raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(6)
	cfg.Shards = 1
	cfg.SampleCapacity = 64
	cfg.CheckpointDir = dir

	cfg.StrictRecovery = true
	if _, err := New(cfg); !errors.Is(err, itemsketch.ErrTruncatedStream) {
		t.Fatalf("strict recovery: %v, want ErrTruncatedStream", err)
	}

	cfg.StrictRecovery = false
	s := mustNew(t, cfg)
	sh := s.Shard(0)
	if sh.State() != Degraded {
		t.Fatalf("lenient recovery state %v, want degraded", sh.State())
	}
	if sh.Seen() != 0 {
		t.Fatalf("lenient recovery kept %d rows from a torn checkpoint", sh.Seen())
	}
	if sh.lastError() == "" {
		t.Fatal("lenient recovery must surface the decode error on the health report")
	}
	// The degraded shard still works and recovers on the next success.
	if _, err := s.Ingest(context.Background(), genRows(50, 6, 14)); err != nil {
		t.Fatal(err)
	}
	if sh.State() != Healthy {
		t.Fatalf("state %v after successful ingest, want healthy", sh.State())
	}
}

func TestRecoveryRejectsForeignShardFile(t *testing.T) {
	dir := t.TempDir()
	raw, _ := checkpointImage(t, dir)
	// Present shard 0's image as shard 1's.
	if err := os.WriteFile(filepath.Join(dir, "shard-1.ckpt"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := readCheckpoint(bytes.NewReader(raw), 1, 6, 64, nil, nil, nil)
	if !errors.Is(err, itemsketch.ErrCorruptSketch) {
		t.Fatalf("cross-shard checkpoint: %v, want ErrCorruptSketch", err)
	}
}
