package service

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	itemsketch "repro"
)

// windowConfig returns testConfig plus a small sliding window: 512 rows
// per shard in 8 buckets, with the decayed heavy-hitter path enabled.
func windowConfig(d int) Config {
	cfg := testConfig(d)
	cfg.Window = &WindowConfig{Rows: 512, Buckets: 8, SampleCapacity: 128, DecayK: 16}
	return cfg
}

// repeatRows returns n copies of the given row.
func repeatRows(n int, row ...int) [][]int {
	rows := make([][]int, n)
	for i := range rows {
		rows[i] = row
	}
	return rows
}

func TestWindowConfigValidation(t *testing.T) {
	cfg := testConfig(4)
	cfg.Window = &WindowConfig{} // Rows missing
	if _, err := New(cfg); !errors.Is(err, itemsketch.ErrInvalidParams) {
		t.Fatalf("New with Rows = 0 window: err = %v, want ErrInvalidParams", err)
	}
	// The normalized window config must never leak back into the
	// caller's struct.
	wc := WindowConfig{Rows: 10}
	cfg.Window = &wc
	s := mustNew(t, cfg)
	if !s.WindowEnabled() {
		t.Fatal("WindowEnabled() = false on a windowed service")
	}
	if wc.Buckets != 0 || wc.Rows != 10 {
		t.Fatalf("New mutated the caller's WindowConfig: %+v", wc)
	}
}

// TestWindowEstimateTracksShift is the headline behavior: after the
// stream's distribution shifts, the window estimate follows the recent
// rows while the whole-stream estimate still reflects the blend.
func TestWindowEstimateTracksShift(t *testing.T) {
	const d = 8
	s := mustNew(t, windowConfig(d))
	ctx := context.Background()
	// Phase A: every row is {0}. Phase B: every row is {1}. Each of the
	// 4 shards sees 1000 B rows — far past its 512-row window, so every
	// live bucket is pure B by the end.
	if _, err := s.Ingest(ctx, repeatRows(6000, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(ctx, repeatRows(4000, 1)); err != nil {
		t.Fatal(err)
	}
	ts := []itemsketch.Itemset{itemsketch.MustItemset(0), itemsketch.MustItemset(1)}

	win, p, err := s.EstimateWindow(ctx, ts)
	if err != nil {
		t.Fatal(err)
	}
	if p.Degraded() {
		t.Fatalf("healthy service reported partial %v", p)
	}
	if win[0] > 0.001 || win[1] < 0.999 {
		t.Errorf("window estimates = %v, want ≈ [0, 1] after the shift", win)
	}

	whole, _, err := s.Estimate(ctx, ts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(whole[0]-0.6) > 0.05 || math.Abs(whole[1]-0.4) > 0.05 {
		t.Errorf("whole-stream estimates = %v, want ≈ [0.6, 0.4]", whole)
	}
}

// TestWindowHeavyHittersRecent pins the decayed heavy-hitter contrast:
// the whole-stream summary still ranks the old majority item, the
// windowed one only the recent item.
func TestWindowHeavyHittersRecent(t *testing.T) {
	const d = 8
	s := mustNew(t, windowConfig(d))
	ctx := context.Background()
	if _, err := s.Ingest(ctx, repeatRows(6000, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(ctx, repeatRows(4000, 1)); err != nil {
		t.Fatal(err)
	}

	items, n, _, err := s.HeavyHitters(ctx, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10000 || len(items) != 1 || items[0].Item != 0 {
		t.Fatalf("whole-stream HeavyHitters = (%v, %d), want item 0 of 10000", items, n)
	}

	wItems, wn, _, err := s.HeavyHittersWindow(ctx, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(wItems) != 1 || wItems[0].Item != 1 {
		t.Fatalf("window HeavyHitters = %v, want exactly item 1", wItems)
	}
	if wn <= 0 || wItems[0].Count <= 0 {
		t.Fatalf("window HeavyHitters mass = (%d of %d), want positive decayed counts", wItems[0].Count, wn)
	}

	if _, _, _, err := s.HeavyHittersWindow(ctx, 1.5); !errors.Is(err, itemsketch.ErrInvalidParams) {
		t.Fatalf("phi = 1.5: err = %v, want ErrInvalidParams", err)
	}
}

func TestWindowNotConfigured(t *testing.T) {
	ctx := context.Background()
	s := mustNew(t, testConfig(4))
	if s.WindowEnabled() {
		t.Fatal("WindowEnabled() = true without Config.Window")
	}
	ts := []itemsketch.Itemset{itemsketch.MustItemset(0)}
	if _, _, err := s.EstimateWindow(ctx, ts); !errors.Is(err, ErrNoWindow) {
		t.Fatalf("EstimateWindow: err = %v, want ErrNoWindow", err)
	}
	if _, _, _, err := s.HeavyHittersWindow(ctx, 0.5); !errors.Is(err, ErrNoWindow) {
		t.Fatalf("HeavyHittersWindow: err = %v, want ErrNoWindow", err)
	}

	// A window with the decayed path disabled answers estimates but not
	// heavy hitters.
	cfg := windowConfig(4)
	cfg.Window.DecayK = -1
	sw := mustNew(t, cfg)
	if _, err := sw.Ingest(ctx, repeatRows(100, 0)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sw.EstimateWindow(ctx, ts); err != nil {
		t.Fatalf("EstimateWindow with DecayK < 0: %v", err)
	}
	if _, _, _, err := sw.HeavyHittersWindow(ctx, 0.5); !errors.Is(err, ErrNoWindow) {
		t.Fatalf("HeavyHittersWindow with DecayK < 0: err = %v, want ErrNoWindow", err)
	}
}

func TestHTTPWindowFlag(t *testing.T) {
	const d = 6
	s := mustNew(t, windowConfig(d))
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	if _, err := s.Ingest(context.Background(), repeatRows(3000, 1)); err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, srv.URL, "/v1/estimate", `{"itemsets":[[1]],"window":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("window estimate: %d %v", resp.StatusCode, body)
	}
	if body["window"] != true {
		t.Fatalf("window estimate body %v, want window:true echoed", body)
	}
	if est := body["estimates"].([]any)[0].(float64); est < 0.999 {
		t.Fatalf("window estimate for the only column = %v, want ≈ 1", est)
	}

	resp, body = postJSON(t, srv.URL, "/v1/heavyhitters", `{"phi":0.5,"window":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("window heavyhitters: %d %v", resp.StatusCode, body)
	}
	if body["source"] != "decayed-misra-gries" {
		t.Fatalf("window heavyhitters source = %v, want decayed-misra-gries", body["source"])
	}

	// The same requests against an unwindowed service are a config
	// conflict, not a 4xx validation failure or a 5xx.
	plain := mustNew(t, testConfig(d))
	psrv := httptest.NewServer(plain.Handler())
	defer psrv.Close()
	resp, body = postJSON(t, psrv.URL, "/v1/estimate", `{"itemsets":[[1]],"window":true}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("window estimate without window: %d %v, want 409", resp.StatusCode, body)
	}
	resp, _ = postJSON(t, psrv.URL, "/v1/heavyhitters", `{"phi":0.5,"window":true}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("window heavyhitters without window: %d, want 409", resp.StatusCode)
	}
}

// estimateBits runs an estimate function and returns the raw float bits,
// so round-trip comparisons are exact rather than within-epsilon.
func estimateBits(t *testing.T, f func(context.Context, []itemsketch.Itemset) ([]float64, Partial, error),
	ts []itemsketch.Itemset) []uint64 {
	t.Helper()
	ests, _, err := f(context.Background(), ts)
	if err != nil {
		t.Fatal(err)
	}
	bits := make([]uint64, len(ests))
	for i, e := range ests {
		bits[i] = math.Float64bits(e)
	}
	return bits
}

// TestWindowCheckpointRoundTrip pins the version-3 checkpoint format:
// close a windowed service, reopen it onto the same directory, and the
// whole-stream and window query surfaces answer bit-identically.
func TestWindowCheckpointRoundTrip(t *testing.T) {
	const d = 8
	dir := t.TempDir()
	cfg := windowConfig(d)
	cfg.CheckpointDir = dir
	ts := []itemsketch.Itemset{
		itemsketch.MustItemset(0), itemsketch.MustItemset(1), itemsketch.MustItemset(0, 1),
	}

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Ingest(ctx, genRows(3000, d, 11)); err != nil {
		t.Fatal(err)
	}
	wantWhole := estimateBits(t, s.Estimate, ts)
	wantWin := estimateBits(t, s.EstimateWindow, ts)
	wantHeavy, wantN, _, err := s.HeavyHittersWindow(ctx, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustNew(t, cfg)
	for _, h := range r.HealthReport() {
		if h.State != Healthy.String() {
			t.Fatalf("shard %d recovered %v: %s", h.ID, h.State, h.LastError)
		}
	}
	gotWhole := estimateBits(t, r.Estimate, ts)
	gotWin := estimateBits(t, r.EstimateWindow, ts)
	for i := range ts {
		if gotWhole[i] != wantWhole[i] {
			t.Errorf("whole-stream estimate %d: %x != %x after recovery", i, gotWhole[i], wantWhole[i])
		}
		if gotWin[i] != wantWin[i] {
			t.Errorf("window estimate %d: %x != %x after recovery", i, gotWin[i], wantWin[i])
		}
	}
	gotHeavy, gotN, _, err := r.HeavyHittersWindow(ctx, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if gotN != wantN || len(gotHeavy) != len(wantHeavy) {
		t.Fatalf("window heavy hitters (%v, %d) != (%v, %d) after recovery", gotHeavy, gotN, wantHeavy, wantN)
	}
	for i := range wantHeavy {
		if gotHeavy[i] != wantHeavy[i] {
			t.Errorf("window heavy hitter %d: %+v != %+v after recovery", i, gotHeavy[i], wantHeavy[i])
		}
	}
}

// rewriteAsV2 truncates the two window sections off a version-3
// checkpoint file and stamps it version 2, reproducing byte-for-byte
// what the previous build wrote for a window-less shard.
func rewriteAsV2(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A window-less v3 file ends with the two zero flag bytes.
	if raw[len(raw)-1] != 0 || raw[len(raw)-2] != 0 {
		t.Fatalf("%s does not end in empty window sections", path)
	}
	raw = raw[:len(raw)-2]
	raw[4] = 2
	binary.LittleEndian.PutUint32(raw[31:35], crc32.ChecksumIEEE(raw[:31]))
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestWindowCheckpointV2BackCompat: a version-2 file (written before
// the window sections existed) still loads into a windowed service —
// the whole-stream state recovers, the window starts empty.
func TestWindowCheckpointV2BackCompat(t *testing.T) {
	const d = 6
	dir := t.TempDir()
	cfg := testConfig(d)
	cfg.CheckpointDir = dir
	ts := []itemsketch.Itemset{itemsketch.MustItemset(0), itemsketch.MustItemset(d - 1)}

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Ingest(ctx, genRows(2000, d, 13)); err != nil {
		t.Fatal(err)
	}
	wantWhole := estimateBits(t, s.Estimate, ts)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Shards; i++ {
		rewriteAsV2(t, filepath.Join(dir, fmt.Sprintf("shard-%d.ckpt", i)))
	}

	wcfg := windowConfig(d)
	wcfg.CheckpointDir = dir
	wcfg.StrictRecovery = true // any decode trouble must fail loudly here
	r, err := New(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	gotWhole := estimateBits(t, r.Estimate, ts)
	for i := range ts {
		if gotWhole[i] != wantWhole[i] {
			t.Errorf("whole-stream estimate %d: %x != %x across the v2 upgrade", i, gotWhole[i], wantWhole[i])
		}
	}
	// The window starts empty: every shard answers, nothing is in any
	// window yet, so estimates are zero.
	win, p, err := r.EstimateWindow(ctx, ts)
	if err != nil {
		t.Fatal(err)
	}
	if p.Degraded() {
		t.Fatalf("v2 upgrade left the service partial: %v", p)
	}
	for i, e := range win {
		if e != 0 {
			t.Errorf("window estimate %d = %v from an empty window, want 0", i, e)
		}
	}
}

// TestWindowCheckpointGeometryMismatch: a checkpoint whose window
// sketch was built under a different geometry must be rejected, not
// silently adopted.
func TestWindowCheckpointGeometryMismatch(t *testing.T) {
	const d = 6
	dir := t.TempDir()
	cfg := windowConfig(d)
	cfg.CheckpointDir = dir
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(context.Background(), genRows(1000, d, 17)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	bad := cfg
	bad.Window = &WindowConfig{Rows: 1024, Buckets: 8, SampleCapacity: 128, DecayK: 16}
	bad.StrictRecovery = true
	if _, err := New(bad); !errors.Is(err, itemsketch.ErrCorruptSketch) {
		t.Fatalf("New with mismatched window geometry: err = %v, want ErrCorruptSketch", err)
	}
}
