package service

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	itemsketch "repro"
	"repro/internal/core"
)

// TestRoutingRedistributesDeadShardSlots pins the slot table: a live
// shard owns its home slot; killing a shard re-homes its slot to a
// live shard deterministically; reviving it hands the slot back.
func TestRoutingRedistributesDeadShardSlots(t *testing.T) {
	const d = 8
	ctx := context.Background()
	s := mustNew(t, testConfig(d))
	if _, err := s.Ingest(ctx, genRows(800, d, 3)); err != nil {
		t.Fatal(err)
	}
	for i, owner := range s.Routing() {
		if owner != i {
			t.Fatalf("healthy routing[%d] = %d, want itself", i, owner)
		}
	}

	s.KillShard(2)
	routing := s.Routing()
	if routing[2] == 2 || routing[2] < 0 {
		t.Fatalf("dead shard 2 still owns its slot: routing = %v", routing)
	}
	if s.shards[routing[2]].State() == Dead {
		t.Fatalf("slot 2 re-homed to dead shard %d", routing[2])
	}
	// The re-homed ring keeps accepting the full row stream.
	before := totalSeen(s)
	if n, err := s.Ingest(ctx, genRows(400, d, 4)); err != nil || n != 400 {
		t.Fatalf("ingest into re-homed ring = (%d, %v), want (400, nil)", n, err)
	}
	if got := totalSeen(s); got != before+400 {
		t.Fatalf("re-homed ring absorbed %d rows, want 400", got-before)
	}

	if err := s.RehomeFromPeer(2, 0); err != nil {
		t.Fatal(err)
	}
	if st := s.shards[2].State(); st != Healthy {
		t.Fatalf("bootstrapped shard state %v, want healthy", st)
	}
	for i, owner := range s.Routing() {
		if owner != i {
			t.Fatalf("post-bootstrap routing[%d] = %d, want itself", i, owner)
		}
	}
	// A full fan-out again: no shard missing from queries.
	_, p, err := s.Estimate(ctx, []itemsketch.Itemset{itemsketch.MustItemset(0)})
	if err != nil || p.Degraded() {
		t.Fatalf("post-bootstrap estimate: (%v, %v)", p, err)
	}
}

// totalSeen sums the rows observed across all shards.
func totalSeen(s *Service) int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.Seen()
	}
	return n
}

// TestAllShardsDeadRoutingIsEmpty: with every shard dead the slot
// table holds -1 and ingest reports ErrNoShards.
func TestAllShardsDeadRoutingIsEmpty(t *testing.T) {
	const d = 8
	s := mustNew(t, testConfig(d))
	for i := 0; i < s.NumShards(); i++ {
		s.KillShard(i)
	}
	for i, owner := range s.Routing() {
		if owner != -1 {
			t.Fatalf("all-dead routing[%d] = %d, want -1", i, owner)
		}
	}
	if _, err := s.Ingest(context.Background(), [][]int{{0}}); err != ErrNoShards {
		t.Fatalf("all-dead ingest error %v, want ErrNoShards", err)
	}
}

// TestBootstrapRejectsLiveShard: only a dead shard may be bootstrapped
// — reviving a serving shard would silently replace its data.
func TestBootstrapRejectsLiveShard(t *testing.T) {
	const d = 8
	s := mustNew(t, testConfig(d))
	if _, err := s.Ingest(context.Background(), genRows(500, d, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.RehomeFromPeer(1, 0); err == nil {
		t.Fatal("bootstrapping a live shard succeeded")
	}
	if err := s.RehomeFromPeer(1, 1); err == nil {
		t.Fatal("bootstrapping a shard from itself succeeded")
	}
	s.KillShard(1)
	s.KillShard(2)
	if err := s.RehomeFromPeer(1, 2); err == nil {
		t.Fatal("bootstrapping from a dead peer succeeded")
	}
}

// TestReplicaBootstrapBitIdentical drives the full HTTP replication
// pair and pins the byte-level contract: GET a source shard's
// envelope, PUT it into a dead shard, and the revived shard's own
// envelope must be bit-identical to the source's — the replica holds
// exactly the peer's sample.
func TestReplicaBootstrapBitIdentical(t *testing.T) {
	const d = 8
	ctx := context.Background()
	s := mustNew(t, testConfig(d))
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	if _, err := s.Ingest(ctx, genRows(2000, d, 7)); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/v1/shards/0/sketch")
	if err != nil {
		t.Fatal(err)
	}
	source, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET source sketch: %d, %v", resp.StatusCode, err)
	}
	seen := resp.Header.Get("X-Shard-Seen")
	if seen == "" {
		t.Fatal("GET did not report X-Shard-Seen")
	}

	s.KillShard(3)
	req, err := http.NewRequest(http.MethodPut, srv.URL+"/v1/shards/3/sketch", bytes.NewReader(source))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Shard-Seen", seen)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT bootstrap: %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/v1/shards/3/sketch")
	if err != nil {
		t.Fatal(err)
	}
	replica, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET replica sketch: %d, %v", resp.StatusCode, err)
	}
	if !bytes.Equal(source, replica) {
		t.Fatalf("replica envelope differs from source: %d vs %d bytes", len(replica), len(source))
	}
	if got := resp.Header.Get("X-Shard-Seen"); got != seen {
		t.Fatalf("replica X-Shard-Seen %q, want %q", got, seen)
	}

	// The revived shard keeps serving: a PUT with garbage must fail
	// cleanly on a live shard (only dead shards bootstrap).
	req, _ = http.NewRequest(http.MethodPut, srv.URL+"/v1/shards/3/sketch", bytes.NewReader(source))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT onto live shard: %d, want 400", resp.StatusCode)
	}
}

// TestRehomeEndpoint drives POST /v1/rehome: kill, re-home from a
// peer, and the health report shows the slot returning home.
func TestRehomeEndpoint(t *testing.T) {
	const d = 8
	ctx := context.Background()
	s := mustNew(t, testConfig(d))
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	if _, err := s.Ingest(ctx, genRows(1000, d, 9)); err != nil {
		t.Fatal(err)
	}

	resp, _ := postJSON(t, srv.URL, "/v1/kill?shard=1", `{}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("kill: %d", resp.StatusCode)
	}
	if got := s.Routing()[1]; got == 1 {
		t.Fatal("killed shard still owns its slot")
	}

	resp, body := postJSON(t, srv.URL, "/v1/rehome?shard=1&from=2", `{}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rehome: %d %v", resp.StatusCode, body)
	}
	if body["rehomed"].(float64) != 1 || body["from"].(float64) != 2 {
		t.Fatalf("rehome body %v", body)
	}
	if got := resp.Header.Get("X-Shards-Answered"); got != "4/4" {
		t.Fatalf("post-rehome X-Shards-Answered %q, want 4/4", got)
	}
	for _, h := range s.HealthReport() {
		if h.RoutedTo != h.ID {
			t.Fatalf("post-rehome health row %+v, want slot back home", h)
		}
	}

	// Bad requests: unknown peer, missing params.
	resp, _ = postJSON(t, srv.URL, "/v1/rehome?shard=1&from=99", `{}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("rehome from unknown peer: %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL, "/v1/rehome?shard=99&from=0", `{}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("rehome of unknown shard: %d, want 400", resp.StatusCode)
	}
}

// TestRehomedReplicaAnswersWithinBounds: after a kill and a peer
// bootstrap, estimates stay within the estimators' (ε,δ) tolerance of
// a never-killed reference service over the same row stream — the
// statistical contract of re-homing (the replica is an
// identically-distributed stand-in, not the dead shard's exact rows).
func TestRehomedReplicaAnswersWithinBounds(t *testing.T) {
	const d = 8
	ctx := context.Background()
	ref := mustNew(t, testConfig(d))
	victim := mustNew(t, testConfig(d))

	half1, half2 := genRows(3000, d, 21), genRows(3000, d, 22)
	for _, svc := range []*Service{ref, victim} {
		if _, err := svc.Ingest(ctx, half1); err != nil {
			t.Fatal(err)
		}
	}
	victim.KillShard(2)
	if err := victim.RehomeFromPeer(2, 0); err != nil {
		t.Fatal(err)
	}
	for _, svc := range []*Service{ref, victim} {
		if _, err := svc.Ingest(ctx, half2); err != nil {
			t.Fatal(err)
		}
	}

	ts := make([]itemsketch.Itemset, d)
	for a := 0; a < d; a++ {
		ts[a] = itemsketch.MustItemset(a)
	}
	want, _, err := ref.Estimate(ctx, ts)
	if err != nil {
		t.Fatal(err)
	}
	got, p, err := victim.Estimate(ctx, ts)
	if err != nil {
		t.Fatal(err)
	}
	if p.Degraded() {
		t.Fatalf("re-homed service still partial: %v", p)
	}
	for a := 0; a < d; a++ {
		// Column a fires w.p. (a+1)/(d+1); both services must agree with
		// that target — and each other — within the ε=0.05 regime the
		// default params promise (loosened for the two sampling layers).
		target := float64(a+1) / float64(d+1)
		if math.Abs(got[a]-target) > 0.08 {
			t.Errorf("attr %d: re-homed estimate %v vs target %v", a, got[a], target)
		}
		if math.Abs(got[a]-want[a]) > 0.08 {
			t.Errorf("attr %d: re-homed estimate %v vs reference %v", a, got[a], want[a])
		}
	}
}

// TestBootstrapRejectsBadEnvelopes pins BootstrapShard's validation:
// garbage bytes, a wrong-universe sample, a sketch kind that carries
// no sample, an out-of-range id, and a closed service all fail
// cleanly, leaving the dead shard dead.
func TestBootstrapRejectsBadEnvelopes(t *testing.T) {
	const d = 8
	ctx := context.Background()
	s := mustNew(t, testConfig(d))
	if _, err := s.Ingest(ctx, genRows(500, d, 3)); err != nil {
		t.Fatal(err)
	}
	s.KillShard(1)

	if err := s.BootstrapShard(1, bytes.NewReader([]byte("not an envelope")), 10); err == nil {
		t.Fatal("garbage envelope bootstrapped a shard")
	}
	if err := s.BootstrapShard(99, bytes.NewReader(nil), 0); !errors.Is(err, itemsketch.ErrInvalidParams) {
		t.Fatalf("out-of-range id: %v, want ErrInvalidParams", err)
	}

	// A valid envelope over the wrong attribute universe must be
	// rejected as corrupt, not merged.
	other := mustNew(t, testConfig(d+1))
	if _, err := other.Ingest(ctx, genRows(500, d+1, 4)); err != nil {
		t.Fatal(err)
	}
	var wrong bytes.Buffer
	snap := other.shards[0].snapshot()
	sk, err := core.SubsampleFromSample(snap.res.Database(), other.cfg.Params)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := itemsketch.MarshalTo(&wrong, sk); err != nil {
		t.Fatal(err)
	}
	if err := s.BootstrapShard(1, &wrong, snap.seen); !errors.Is(err, itemsketch.ErrCorruptSketch) {
		t.Fatalf("wrong-universe envelope: %v, want ErrCorruptSketch", err)
	}

	// An envelope of a kind that carries no row sample cannot revive a
	// shard.
	cs, err := itemsketch.NewCountSketch(itemsketch.CountSketchConfig{
		Universe: d, Rows: 2, Cols: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BootstrapShard(1, bytes.NewReader(itemsketch.Marshal(cs)), 10); err == nil {
		t.Fatal("sample-less sketch kind bootstrapped a shard")
	}

	if st := s.shards[1].State(); st != Dead {
		t.Fatalf("shard 1 state %v after failed bootstraps, want dead", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.BootstrapShard(1, bytes.NewReader(nil), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed service: %v, want ErrClosed", err)
	}
}

// TestBootstrapFloorsSeenToSampleRows: a seen counter smaller than the
// sample it accompanies is floored to the sample size, keeping the
// seen-weighted merge sane.
func TestBootstrapFloorsSeenToSampleRows(t *testing.T) {
	const d = 8
	ctx := context.Background()
	s := mustNew(t, testConfig(d))
	if _, err := s.Ingest(ctx, genRows(500, d, 3)); err != nil {
		t.Fatal(err)
	}
	snap := s.shards[0].snapshot()
	sk, err := core.SubsampleFromSample(snap.res.Database(), s.cfg.Params)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := itemsketch.MarshalTo(&buf, sk); err != nil {
		t.Fatal(err)
	}
	s.KillShard(3)
	if err := s.BootstrapShard(3, &buf, 0); err != nil {
		t.Fatal(err)
	}
	rows := int64(snap.res.Database().NumRows())
	if got := s.shards[3].Seen(); got != rows {
		t.Fatalf("seen = %d after zero-seen bootstrap, want floored to %d sample rows", got, rows)
	}
}

// TestConcurrentBootstrapOnlyOneWins races two peer bootstraps of the
// same dead shard: exactly one revives it, the loser reports the shard
// no longer dead, and the winner's sample serves queries — the
// under-lock recheck in revive, pinned under -race.
func TestConcurrentBootstrapOnlyOneWins(t *testing.T) {
	const d = 8
	ctx := context.Background()
	s := mustNew(t, testConfig(d))
	if _, err := s.Ingest(ctx, genRows(1000, d, 5)); err != nil {
		t.Fatal(err)
	}
	s.KillShard(2)
	errs := make(chan error, 2)
	for _, peer := range []int{0, 1} {
		go func(peer int) { errs <- s.RehomeFromPeer(2, peer) }(peer)
	}
	var failed int
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			failed++
			if !errors.Is(err, itemsketch.ErrInvalidParams) {
				t.Fatalf("losing bootstrap error %v, want ErrInvalidParams", err)
			}
		}
	}
	if failed != 1 {
		t.Fatalf("%d of 2 concurrent bootstraps failed, want exactly 1", failed)
	}
	if st := s.shards[2].State(); st != Healthy {
		t.Fatalf("shard state %v after racing bootstraps, want healthy", st)
	}
	if _, p, err := s.Estimate(ctx, []itemsketch.Itemset{itemsketch.MustItemset(0)}); err != nil || p.Degraded() {
		t.Fatalf("post-race estimate: (%v, %v)", p, err)
	}
}

// TestHealthStrings pins the operator-facing state names, including
// the out-of-range fallback.
func TestHealthStrings(t *testing.T) {
	for h, want := range map[Health]string{
		Healthy: "healthy", Degraded: "degraded", Dead: "dead", Health(9): "health(9)",
	} {
		if got := h.String(); got != want {
			t.Errorf("Health(%d).String() = %q, want %q", int32(h), got, want)
		}
	}
}
