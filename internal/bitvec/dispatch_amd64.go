//go:build amd64 && !purego

package bitvec

// amd64 kernel dispatch: one-time CPUID feature detection at package
// init selects between the AVX2 assembly kernels (words_amd64.s) and
// the portable Go loops. The assembly is taken only when it is live
// (AVX2 present, YMM state OS-enabled, not forced off by SetPureGo)
// AND the operand is at least kernelMinWords words — below the
// crossover the fixed call + VZEROUPPER overhead outweighs the vector
// win and the Go range loop is faster.

// kernelMinWords is the measured asm-vs-Go crossover on the reference
// hardware (Xeon 2.1GHz; see BenchmarkKernelCrossover in
// dispatch_bench_test.go): at 4 words the two are at parity (call +
// VZEROUPPER overhead eats the vector win), at 8 words the assembly
// is 1.2–2.2x ahead depending on kernel, 2–2.7x at 16, and 3–4.5x at
// the L1/L2 operand sizes (157/1563 words). 8 keeps the capped
// kernels' 32-word blocks and every dataset column of ≥512 rows on
// the vector path.
const kernelMinWords = 8

// hwAVX2 is the immutable hardware capability; kernelAVX2 is the live
// dispatch switch (equal to hwAVX2 unless a test forces the pure-Go
// path via SetPureGo).
var hwAVX2 = detectAVX2()
var kernelAVX2 = hwAVX2

func archCountWords(w []uint64) int {
	if kernelAVX2 && len(w) >= kernelMinWords {
		return countWordsAVX2(&w[0], len(w))
	}
	return countWordsGo(w)
}

func archAndCountWords(a, b []uint64) int {
	if kernelAVX2 && len(a) >= kernelMinWords {
		return andCountWordsAVX2(&a[0], &b[0], len(a))
	}
	return andCountWordsGo(a, b)
}

func archAndNotCountWords(a, b []uint64) int {
	if kernelAVX2 && len(a) >= kernelMinWords {
		return andNotCountWordsAVX2(&a[0], &b[0], len(a))
	}
	return andNotCountWordsGo(a, b)
}

func archAndInto(dst, a, b []uint64) int {
	if kernelAVX2 && len(dst) >= kernelMinWords {
		return andIntoAVX2(&dst[0], &a[0], &b[0], len(dst))
	}
	return andIntoGo(dst, a, b)
}

func archAndNotInto(dst, a, b []uint64) int {
	if kernelAVX2 && len(dst) >= kernelMinWords {
		return andNotIntoAVX2(&dst[0], &a[0], &b[0], len(dst))
	}
	return andNotIntoGo(dst, a, b)
}

// KernelFeatures describes the active kernel dispatch path, e.g.
// "avx2=true" when the assembly kernels are live. Benchmarks record it
// so a perf comparison can distinguish a dispatch-path change from
// clock drift.
func KernelFeatures() string {
	if kernelAVX2 {
		return "avx2=true"
	}
	return "avx2=false"
}

// SetPureGo forces (true) or restores (false) the pure-Go kernels and
// reports whether the pure-Go path was already active. Restoring
// re-enables the assembly only if the hardware supports it. It exists
// so tests can prove both dispatch paths first-class; it is not
// synchronized and must not race with kernel calls.
func SetPureGo(pure bool) bool {
	prev := !kernelAVX2
	kernelAVX2 = !pure && hwAVX2
	return prev
}

// Assembly kernels (words_amd64.s). Each takes base pointers and a
// word count, handles any count including zero-length vector bodies
// and scalar tails internally, and returns the popcount of the result.
// The Into kernels store dst = a OP b; dst may equal a and/or b but
// must not partially overlap them.

//go:noescape
func countWordsAVX2(p *uint64, n int) int

//go:noescape
func andCountWordsAVX2(a, b *uint64, n int) int

//go:noescape
func andNotCountWordsAVX2(a, b *uint64, n int) int

//go:noescape
func andIntoAVX2(dst, a, b *uint64, n int) int

//go:noescape
func andNotIntoAVX2(dst, a, b *uint64, n int) int
