package bitvec

import (
	"math/bits"
	"math/rand"
	"testing"
)

// Differential suite for the 2-operand kernel layer: the dispatched
// kernels (assembly on capable amd64 hardware, Go loops elsewhere)
// must be bit-identical to straightforward reference loops for every
// operation, across lengths covering every tail residue of the
// 16-word vector batch, degenerate and adversarial bit patterns, and
// sub-slices carved at odd word offsets from a shared arena (8-byte
// aligned but deliberately 32-byte misaligned, like dataset arena
// views). The same tests run under `-tags purego` and in the CI race
// job, so both dispatch paths stay first-class.

// kernelTestLengths covers 0..67 densely (every residue mod 16 both
// below and above one full 4-vector trip), the documented L1/L2
// benchmark operand sizes, and larger multi-KiB operands.
func kernelTestLengths() []int {
	ls := make([]int, 0, 80)
	for n := 0; n <= 67; n++ {
		ls = append(ls, n)
	}
	ls = append(ls, 96, 127, 128, 157, 255, 256, 1000, 1563, 4096)
	return ls
}

// kernelPatterns returns named word generators: f(i) is word i.
func kernelPatterns() map[string]func(i int) uint64 {
	rnd := rand.New(rand.NewSource(0xbadc0de))
	randWords := make([]uint64, 8192)
	for i := range randWords {
		randWords[i] = rnd.Uint64()
	}
	return map[string]func(i int) uint64{
		"zeros":     func(i int) uint64 { return 0 },
		"ones":      func(i int) uint64 { return ^uint64(0) },
		"random":    func(i int) uint64 { return randWords[i%len(randWords)] },
		"singlebit": func(i int) uint64 { return 1 << (uint(i*7) % 64) },
		"alt":       func(i int) uint64 { return 0xaaaaaaaaaaaaaaaa >> (uint(i) % 2) },
	}
}

func refCount(a []uint64) int {
	c := 0
	for _, x := range a {
		c += bits.OnesCount64(x)
	}
	return c
}

func refAndCount(a, b []uint64) int {
	c := 0
	for i := range a {
		c += bits.OnesCount64(a[i] & b[i])
	}
	return c
}

func refAndNotCount(a, b []uint64) int {
	c := 0
	for i := range a {
		c += bits.OnesCount64(a[i] &^ b[i])
	}
	return c
}

// fillPattern writes pat into dst with the global word index starting
// at base, so carved sub-slices see the same stream as flat slices.
func fillPattern(dst []uint64, pat func(int) uint64, base int) {
	for i := range dst {
		dst[i] = pat(base + i)
	}
}

// forEachOperandPair runs fn over pattern pairs laid out both as flat
// slices and as sub-slices carved from one arena at word offsets 1 and
// 3 (8-byte aligned, 32-byte misaligned — the layout dataset column
// windows and miner arena windows actually have).
func forEachOperandPair(t *testing.T, n int, fn func(name string, a, b []uint64)) {
	pats := kernelPatterns()
	for an, ap := range pats {
		for bn, bp := range pats {
			a := make([]uint64, n)
			b := make([]uint64, n)
			fillPattern(a, ap, 0)
			fillPattern(b, bp, 0)
			fn(an+"/"+bn+"/flat", a, b)

			arena := make([]uint64, 2*n+8)
			ua := arena[1 : 1+n : 1+n]
			ub := arena[n+3 : n+3+n : n+3+n]
			fillPattern(ua, ap, 0)
			fillPattern(ub, bp, 0)
			fn(an+"/"+bn+"/unaligned", ua, ub)
		}
	}
}

func TestKernelDifferentialCounts(t *testing.T) {
	for _, n := range kernelTestLengths() {
		forEachOperandPair(t, n, func(name string, a, b []uint64) {
			if got, want := CountWords(a), refCount(a); got != want {
				t.Fatalf("CountWords n=%d %s: got %d want %d", n, name, got, want)
			}
			if got, want := AndCountWords(a, b), refAndCount(a, b); got != want {
				t.Fatalf("AndCountWords n=%d %s: got %d want %d", n, name, got, want)
			}
			if got, want := AndNotCountWords(a, b), refAndNotCount(a, b); got != want {
				t.Fatalf("AndNotCountWords n=%d %s: got %d want %d", n, name, got, want)
			}
		})
	}
}

func TestKernelDifferentialInto(t *testing.T) {
	for _, n := range kernelTestLengths() {
		forEachOperandPair(t, n, func(name string, a, b []uint64) {
			aOrig := append([]uint64(nil), a...)
			bOrig := append([]uint64(nil), b...)

			dst := make([]uint64, n)
			if got, want := AndInto(dst, a, b), refAndCount(aOrig, bOrig); got != want {
				t.Fatalf("AndInto n=%d %s: count %d want %d", n, name, got, want)
			}
			for i := range dst {
				if dst[i] != aOrig[i]&bOrig[i] {
					t.Fatalf("AndInto n=%d %s: dst[%d] = %#x want %#x", n, name, i, dst[i], aOrig[i]&bOrig[i])
				}
			}

			if got, want := AndNotInto(dst, a, b), refAndNotCount(aOrig, bOrig); got != want {
				t.Fatalf("AndNotInto n=%d %s: count %d want %d", n, name, got, want)
			}
			for i := range dst {
				if dst[i] != aOrig[i]&^bOrig[i] {
					t.Fatalf("AndNotInto n=%d %s: dst[%d] = %#x want %#x", n, name, i, dst[i], aOrig[i]&^bOrig[i])
				}
			}
		})
	}
}

// TestKernelDifferentialAliased pins the documented exact-aliasing
// contract: dst == a (the accumulator pattern), dst == b, and a == b.
func TestKernelDifferentialAliased(t *testing.T) {
	for _, n := range kernelTestLengths() {
		forEachOperandPair(t, n, func(name string, a, b []uint64) {
			aOrig := append([]uint64(nil), a...)
			bOrig := append([]uint64(nil), b...)
			check := func(label string, got, want int, dst, ref []uint64) {
				t.Helper()
				if got != want {
					t.Fatalf("%s n=%d %s: count %d want %d", label, n, name, got, want)
				}
				for i := range dst {
					if dst[i] != ref[i] {
						t.Fatalf("%s n=%d %s: dst[%d] = %#x want %#x", label, n, name, i, dst[i], ref[i])
					}
				}
			}
			wantAnd := make([]uint64, n)
			for i := range wantAnd {
				wantAnd[i] = aOrig[i] & bOrig[i]
			}
			wantAndNot := make([]uint64, n)
			for i := range wantAndNot {
				wantAndNot[i] = aOrig[i] &^ bOrig[i]
			}

			copy(a, aOrig)
			check("AndInto dst=a", AndInto(a, a, b), refAndCount(aOrig, bOrig), a, wantAnd)
			copy(a, aOrig)
			copy(b, bOrig)
			check("AndInto dst=b", AndInto(b, a, b), refAndCount(aOrig, bOrig), b, wantAnd)
			copy(b, bOrig)
			check("AndInto dst=a=b", AndInto(a, a, a), refCount(aOrig), a, aOrig)

			copy(a, aOrig)
			check("AndNotInto dst=a", AndNotInto(a, a, b), refAndNotCount(aOrig, bOrig), a, wantAndNot)
			copy(a, aOrig)
			copy(b, bOrig)
			check("AndNotInto dst=b", AndNotInto(b, a, b), refAndNotCount(aOrig, bOrig), b, wantAndNot)
			copy(b, bOrig)
			zero := make([]uint64, n)
			check("AndNotInto dst=a=b", AndNotInto(a, a, a), 0, a, zero)
			copy(a, aOrig)
		})
	}
}

// TestKernelCappedDifferential checks the capped kernels (whose block
// bodies run through the dispatched kernels) against the plain kernels
// for both completing and early-exiting budgets.
func TestKernelCappedDifferential(t *testing.T) {
	for _, n := range []int{0, 1, 5, 31, 32, 33, 64, 157, 320, 1563} {
		forEachOperandPair(t, n, func(name string, a, b []uint64) {
			full := refAndCount(a, b)
			fullNot := refAndNotCount(a, b)
			for _, budget := range []int{0, 1, full - 1, full, full + 1, 1 << 30} {
				if budget < 0 {
					continue
				}
				dst := make([]uint64, n)
				cnt, ok := AndIntoCapped(dst, a, b, budget)
				if ok != (full <= budget) {
					t.Fatalf("AndIntoCapped n=%d %s budget=%d: ok=%v full=%d", n, name, budget, ok, full)
				}
				if ok && cnt != full {
					t.Fatalf("AndIntoCapped n=%d %s budget=%d: cnt=%d want %d", n, name, budget, cnt, full)
				}
				if !ok && cnt <= budget {
					t.Fatalf("AndIntoCapped n=%d %s budget=%d: early exit with cnt=%d", n, name, budget, cnt)
				}
				if ok {
					for i := range dst {
						if dst[i] != a[i]&b[i] {
							t.Fatalf("AndIntoCapped n=%d %s: dst[%d] mismatch", n, name, i)
						}
					}
				}
				cnt, ok = AndNotIntoCapped(dst, a, b, budget)
				if ok != (fullNot <= budget) || (ok && cnt != fullNot) {
					t.Fatalf("AndNotIntoCapped n=%d %s budget=%d: cnt=%d ok=%v want %d", n, name, budget, cnt, ok, fullNot)
				}
			}
		})
	}
}

// TestKernelPureGoPath forces the pure-Go dispatch path and re-runs
// the differential suite, proving the fallback is first-class on the
// same build that normally takes the assembly. On builds where the
// assembly isn't compiled in this re-checks the only path.
func TestKernelPureGoPath(t *testing.T) {
	wasPure := SetPureGo(true)
	defer SetPureGo(wasPure)
	if KernelFeatures() != "avx2=false" {
		t.Fatalf("KernelFeatures after SetPureGo(true) = %q, want avx2=false", KernelFeatures())
	}
	t.Run("counts", TestKernelDifferentialCounts)
	t.Run("into", TestKernelDifferentialInto)
	t.Run("capped", TestKernelCappedDifferential)
}

// FuzzWordKernels cross-checks every dispatched kernel against the
// reference loops on fuzzer-chosen operands (split point chosen by the
// first byte, remaining bytes packed into words).
func FuzzWordKernels(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x80, 0xff, 0x00, 0xaa})
	seed := make([]byte, 1+16*16)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		words := make([]uint64, (len(data)-1+7)/8)
		for i, by := range data[1:] {
			words[i/8] |= uint64(by) << (uint(i%8) * 8)
		}
		n := len(words) / 2
		a, b := words[:n:n], words[n:2*n:2*n]
		if got, want := AndCountWords(a, b), refAndCount(a, b); got != want {
			t.Fatalf("AndCountWords: %d want %d", got, want)
		}
		if got, want := AndNotCountWords(a, b), refAndNotCount(a, b); got != want {
			t.Fatalf("AndNotCountWords: %d want %d", got, want)
		}
		if got, want := CountWords(a), refCount(a); got != want {
			t.Fatalf("CountWords: %d want %d", got, want)
		}
		dst := make([]uint64, n)
		if got, want := AndInto(dst, a, b), refAndCount(a, b); got != want {
			t.Fatalf("AndInto: %d want %d", got, want)
		}
		for i := range dst {
			if dst[i] != a[i]&b[i] {
				t.Fatalf("AndInto dst[%d] mismatch", i)
			}
		}
		if got, want := AndNotInto(dst, a, b), refAndNotCount(a, b); got != want {
			t.Fatalf("AndNotInto: %d want %d", got, want)
		}
		for i := range dst {
			if dst[i] != a[i]&^b[i] {
				t.Fatalf("AndNotInto dst[%d] mismatch", i)
			}
		}
		budget := int(data[0])
		cnt, ok := AndIntoCapped(dst, a, b, budget)
		if full := refAndCount(a, b); ok && cnt != full {
			t.Fatalf("AndIntoCapped: cnt=%d want %d", cnt, full)
		} else if !ok && (cnt <= budget || full <= budget) {
			t.Fatalf("AndIntoCapped: spurious early exit cnt=%d budget=%d full=%d", cnt, budget, full)
		}
	})
}
