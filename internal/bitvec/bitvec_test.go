package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorBasics(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d, want 130", v.Len())
	}
	if v.Count() != 0 {
		t.Fatalf("new vector Count = %d, want 0", v.Count())
	}
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		v.Set(i)
	}
	for _, i := range idx {
		if !v.Get(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if v.Count() != len(idx) {
		t.Fatalf("Count = %d, want %d", v.Count(), len(idx))
	}
	v.Clear(64)
	if v.Get(64) {
		t.Error("bit 64 should be cleared")
	}
	v.Flip(64)
	if !v.Get(64) {
		t.Error("bit 64 should be set after flip")
	}
	v.Flip(64)
	if v.Get(64) {
		t.Error("bit 64 should be cleared after second flip")
	}
}

func TestVectorSetBool(t *testing.T) {
	v := New(10)
	v.SetBool(3, true)
	if !v.Get(3) {
		t.Error("SetBool(3,true) failed")
	}
	v.SetBool(3, false)
	if v.Get(3) {
		t.Error("SetBool(3,false) failed")
	}
}

func TestVectorOutOfRangePanics(t *testing.T) {
	v := New(8)
	for name, f := range map[string]func(){
		"Get":   func() { v.Get(8) },
		"Set":   func() { v.Set(-1) },
		"Clear": func() { v.Clear(100) },
		"Flip":  func() { v.Flip(8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out of range did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestContainsAll(t *testing.T) {
	v := FromIndices(100, []int{1, 5, 50, 99})
	sub := FromIndices(100, []int{5, 99})
	notsub := FromIndices(100, []int{5, 98})
	if !v.ContainsAll(sub) {
		t.Error("sub should be contained")
	}
	if v.ContainsAll(notsub) {
		t.Error("notsub should not be contained")
	}
	empty := New(100)
	if !v.ContainsAll(empty) {
		t.Error("empty set is a subset of anything")
	}
	// Shorter argument is allowed.
	short := FromIndices(60, []int{5, 50})
	if !v.ContainsAll(short) {
		t.Error("short subset should be contained")
	}
}

func TestBooleanOps(t *testing.T) {
	a := FromIndices(70, []int{0, 10, 65})
	b := FromIndices(70, []int{10, 20, 65})

	and := a.Clone()
	and.And(b)
	if got := and.Ones(); len(got) != 2 || got[0] != 10 || got[1] != 65 {
		t.Errorf("And = %v, want [10 65]", got)
	}

	or := a.Clone()
	or.Or(b)
	if or.Count() != 4 {
		t.Errorf("Or count = %d, want 4", or.Count())
	}

	xor := a.Clone()
	xor.Xor(b)
	if got := xor.Ones(); len(got) != 2 || got[0] != 0 || got[1] != 20 {
		t.Errorf("Xor = %v, want [0 20]", got)
	}

	an := a.Clone()
	an.AndNot(b)
	if got := an.Ones(); len(got) != 1 || got[0] != 0 {
		t.Errorf("AndNot = %v, want [0]", got)
	}

	if a.AndCount(b) != 2 {
		t.Errorf("AndCount = %d, want 2", a.AndCount(b))
	}
	if a.HammingDistance(b) != 2 {
		t.Errorf("HammingDistance = %d, want 2", a.HammingDistance(b))
	}
	if !a.Intersects(b) {
		t.Error("a and b intersect")
	}
	c := FromIndices(70, []int{1, 2})
	if c.Intersects(FromIndices(70, []int{3, 4})) {
		t.Error("disjoint vectors should not intersect")
	}
}

func TestOnesAndNextOne(t *testing.T) {
	idx := []int{3, 64, 66, 128}
	v := FromIndices(200, idx)
	got := v.Ones()
	if len(got) != len(idx) {
		t.Fatalf("Ones = %v, want %v", got, idx)
	}
	for i := range idx {
		if got[i] != idx[i] {
			t.Fatalf("Ones = %v, want %v", got, idx)
		}
	}
	if v.NextOne(0) != 3 {
		t.Errorf("NextOne(0) = %d, want 3", v.NextOne(0))
	}
	if v.NextOne(4) != 64 {
		t.Errorf("NextOne(4) = %d, want 64", v.NextOne(4))
	}
	if v.NextOne(129) != -1 {
		t.Errorf("NextOne(129) = %d, want -1", v.NextOne(129))
	}
	if v.NextOne(-5) != 3 {
		t.Errorf("NextOne(-5) = %d, want 3", v.NextOne(-5))
	}
}

func TestVectorString(t *testing.T) {
	v := FromIndices(5, []int{1, 4})
	if v.String() != "01001" {
		t.Errorf("String = %q, want 01001", v.String())
	}
}

func TestMatrix(t *testing.T) {
	m := NewMatrix(3, 70)
	m.Set(0, 0)
	m.Set(1, 69)
	m.Set(2, 35)
	if !m.Get(0, 0) || !m.Get(1, 69) || !m.Get(2, 35) {
		t.Fatal("matrix get/set failed")
	}
	if m.Get(0, 1) {
		t.Fatal("unexpected set bit")
	}
	row := m.Row(1)
	if row.Len() != 70 || row.Count() != 1 || !row.Get(69) {
		t.Fatal("row view incorrect")
	}
	// Row view shares storage.
	row.Set(5)
	if !m.Get(1, 5) {
		t.Fatal("row view should share storage")
	}
	col := m.Column(35)
	if col.Len() != 3 || !col.Get(2) || col.Get(0) {
		t.Fatal("column extraction incorrect")
	}
	m.SetBool(2, 35, false)
	if m.Get(2, 35) {
		t.Fatal("SetBool false failed")
	}

	c := m.Clone()
	if !c.Equal(m) {
		t.Fatal("clone should equal original")
	}
	c.Set(0, 7)
	if c.Equal(m) {
		t.Fatal("clone should be independent")
	}

	v := FromIndices(70, []int{2, 68})
	m.SetRow(0, v)
	if !m.Get(0, 2) || !m.Get(0, 68) || m.Get(0, 0) {
		t.Fatal("SetRow failed")
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var w Writer
	w.WriteBit(true)
	w.WriteBit(false)
	w.WriteUint(0xDEADBEEF, 32)
	w.WriteUint(5, 3)
	w.WriteBytes([]byte{0x01, 0xFF})
	if w.BitLen() != 1+1+32+3+16 {
		t.Fatalf("BitLen = %d, want 53", w.BitLen())
	}

	r := NewReader(w.Bytes(), w.BitLen())
	b1, err := r.ReadBit()
	if err != nil || !b1 {
		t.Fatalf("ReadBit 1 = %v, %v", b1, err)
	}
	b2, err := r.ReadBit()
	if err != nil || b2 {
		t.Fatalf("ReadBit 2 = %v, %v", b2, err)
	}
	u, err := r.ReadUint(32)
	if err != nil || u != 0xDEADBEEF {
		t.Fatalf("ReadUint = %#x, %v", u, err)
	}
	u3, err := r.ReadUint(3)
	if err != nil || u3 != 5 {
		t.Fatalf("ReadUint(3) = %d, %v", u3, err)
	}
	bs, err := r.ReadBytes(2)
	if err != nil || bs[0] != 0x01 || bs[1] != 0xFF {
		t.Fatalf("ReadBytes = %v, %v", bs, err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", r.Remaining())
	}
	if _, err := r.ReadBit(); err != ErrShortStream {
		t.Fatalf("read past end: err = %v, want ErrShortStream", err)
	}
}

func TestVectorStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(200)
		v := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				v.Set(i)
			}
		}
		var w Writer
		v.AppendTo(&w)
		if w.BitLen() != n {
			t.Fatalf("BitLen = %d, want %d", w.BitLen(), n)
		}
		r := NewReader(w.Bytes(), w.BitLen())
		got, err := ReadVector(r, n)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(v) {
			t.Fatalf("round trip mismatch at n=%d", n)
		}
	}
}

// Property: WriteUint/ReadUint round-trips arbitrary values at the
// minimal width that can hold them.
func TestQuickUintRoundTrip(t *testing.T) {
	f := func(v uint64, widthSeed uint8) bool {
		width := 1 + int(widthSeed)%64
		v &= (uint64(1)<<uint(width) - 1) | (uint64(1)<<uint(width) - 1) // mask to width
		if width < 64 {
			v &= uint64(1)<<uint(width) - 1
		}
		var w Writer
		w.WriteUint(v, width)
		r := NewReader(w.Bytes(), w.BitLen())
		got, err := r.ReadUint(width)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FromBools/Get agree.
func TestQuickFromBools(t *testing.T) {
	f := func(b []bool) bool {
		v := FromBools(b)
		if v.Len() != len(b) {
			return false
		}
		for i, x := range b {
			if v.Get(i) != x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Xor with self gives zero; HammingDistance is symmetric.
func TestQuickXorHamming(t *testing.T) {
	f := func(a, b []bool) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		va := FromBools(a[:n])
		vb := FromBools(b[:n])
		if va.HammingDistance(vb) != vb.HammingDistance(va) {
			return false
		}
		x := va.Clone()
		x.Xor(va)
		return x.Count() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAndCount(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	v := New(4096)
	u := New(4096)
	for i := 0; i < 4096; i++ {
		if rng.Intn(2) == 0 {
			v.Set(i)
		}
		if rng.Intn(2) == 0 {
			u.Set(i)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.AndCount(u)
	}
}
