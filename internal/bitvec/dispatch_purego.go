//go:build !amd64 || purego

package bitvec

// Pure-Go kernel dispatch: every arch except amd64, and any arch under
// `-tags purego`, binds the 2-operand kernels straight to the portable
// range loops in words.go. This file and dispatch_amd64.go define the
// same arch* hooks; exactly one of them compiles into any build.

func archCountWords(w []uint64) int          { return countWordsGo(w) }
func archAndCountWords(a, b []uint64) int    { return andCountWordsGo(a, b) }
func archAndNotCountWords(a, b []uint64) int { return andNotCountWordsGo(a, b) }
func archAndInto(dst, a, b []uint64) int     { return andIntoGo(dst, a, b) }
func archAndNotInto(dst, a, b []uint64) int  { return andNotIntoGo(dst, a, b) }

// KernelFeatures describes the active kernel dispatch path, e.g.
// "avx2=true" when the assembly kernels are live. Benchmarks record it
// so a perf comparison can distinguish a dispatch-path change from
// clock drift. Pure-Go builds always report avx2=false.
func KernelFeatures() string { return "avx2=false" }

// SetPureGo forces (true) or restores (false) the pure-Go kernels and
// reports whether the pure-Go path was already active. It exists so
// tests can prove both dispatch paths first-class; it is not
// synchronized and must not race with kernel calls. On this build the
// pure-Go path is the only path and the call is a no-op.
func SetPureGo(pure bool) bool { return true }
