// Package bitvec provides packed bit vectors, bit matrices, word-slice
// kernels, and bit-granular I/O streams.
//
// The sketching framework measures sketch sizes in bits, exactly as the
// paper does (Definition 5 measures |S| in bits). Every sketch in this
// repository serializes itself through a bitvec.Writer so that reported
// sizes are the length of a real encoding rather than an in-memory
// estimate. Databases store their rows in contiguous packed-word
// arenas, which makes itemset containment tests (the inner loop of
// every frequency query) word-parallel.
//
// Two tiers of API are provided. Vector is the safe, bounds-checked
// bit-vector type used throughout the lower-bound and coding machinery.
// The word-slice kernels in words.go (CountWords, AndCountWords,
// AndInto, AndCountAll, ContainsAllWords) are the zero-allocation hot
// path used by the dataset query engine: fused single-pass loops over
// raw []uint64 storage, with Wrap bridging the two representations as
// a no-copy view.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// wordsFor returns the number of 64-bit words needed to hold n bits.
func wordsFor(n int) int {
	return (n + wordBits - 1) / wordBits
}

// Vector is a fixed-length packed bit vector. The zero value is an empty
// vector of length 0; use New to create a vector of a given length.
type Vector struct {
	n     int
	words []uint64
}

// New returns a zeroed bit vector of length n. It panics if n is negative.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{n: n, words: make([]uint64, wordsFor(n))}
}

// FromBools builds a vector whose ith bit is 1 iff b[i] is true.
func FromBools(b []bool) *Vector {
	v := New(len(b))
	for i, x := range b {
		if x {
			v.Set(i)
		}
	}
	return v
}

// FromIndices builds a vector of length n with 1s exactly at the given
// indices. It panics if any index is out of range.
func FromIndices(n int, idx []int) *Vector {
	v := New(n)
	for _, i := range idx {
		v.Set(i)
	}
	return v
}

// Len returns the length of the vector in bits.
func (v *Vector) Len() int { return v.n }

// Get reports whether bit i is set. It panics if i is out of range.
func (v *Vector) Get(i int) bool {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
	return v.words[i/wordBits]>>(uint(i)%wordBits)&1 == 1
}

// Set sets bit i to 1. It panics if i is out of range.
func (v *Vector) Set(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
	v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear sets bit i to 0. It panics if i is out of range.
func (v *Vector) Clear(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
	v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// SetBool sets bit i to b.
func (v *Vector) SetBool(i int, b bool) {
	if b {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

// Flip inverts bit i.
func (v *Vector) Flip(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
	v.words[i/wordBits] ^= 1 << (uint(i) % wordBits)
}

// Count returns the number of set bits. It runs on the dispatched
// kernel layer (words.go), so large vectors take the SIMD path.
func (v *Vector) Count() int {
	return CountWords(v.words)
}

// ContainsAll reports whether every bit set in t is also set in v,
// i.e. t ⊆ v viewed as sets. Vectors of different lengths compare by
// their common prefix words; t must not be longer than v.
func (v *Vector) ContainsAll(t *Vector) bool {
	if t.n > v.n {
		panic("bitvec: ContainsAll argument longer than receiver")
	}
	for i, w := range t.words {
		if w&^v.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether v and t share at least one set bit.
func (v *Vector) Intersects(t *Vector) bool {
	m := len(v.words)
	if len(t.words) < m {
		m = len(t.words)
	}
	for i := 0; i < m; i++ {
		if v.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// And sets v = v AND t. The vectors must have the same length.
func (v *Vector) And(t *Vector) {
	v.sameLen(t)
	for i := range v.words {
		v.words[i] &= t.words[i]
	}
}

// Or sets v = v OR t. The vectors must have the same length.
func (v *Vector) Or(t *Vector) {
	v.sameLen(t)
	for i := range v.words {
		v.words[i] |= t.words[i]
	}
}

// Xor sets v = v XOR t. The vectors must have the same length.
func (v *Vector) Xor(t *Vector) {
	v.sameLen(t)
	for i := range v.words {
		v.words[i] ^= t.words[i]
	}
}

// AndNot sets v = v AND NOT t. The vectors must have the same length.
func (v *Vector) AndNot(t *Vector) {
	v.sameLen(t)
	for i := range v.words {
		v.words[i] &^= t.words[i]
	}
}

// AndCount returns the popcount of v AND t without allocating.
// The vectors must have the same length. Like Count it runs on the
// dispatched kernel layer.
func (v *Vector) AndCount(t *Vector) int {
	v.sameLen(t)
	return AndCountWords(v.words, t.words)
}

func (v *Vector) sameLen(t *Vector) {
	if v.n != t.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, t.n))
	}
}

// Equal reports whether v and t have the same length and bits.
func (v *Vector) Equal(t *Vector) bool {
	if v.n != t.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// HammingDistance returns the number of positions where v and t differ.
// The vectors must have the same length.
func (v *Vector) HammingDistance(t *Vector) int {
	v.sameLen(t)
	c := 0
	for i := range v.words {
		c += bits.OnesCount64(v.words[i] ^ t.words[i])
	}
	return c
}

// Clone returns a deep copy of v.
func (v *Vector) Clone() *Vector {
	w := New(v.n)
	copy(w.words, v.words)
	return w
}

// Ones returns the indices of all set bits in increasing order.
func (v *Vector) Ones() []int {
	out := make([]int, 0, v.Count())
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// NextOne returns the index of the first set bit at position >= from,
// or -1 if there is none.
func (v *Vector) NextOne(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= v.n {
		return -1
	}
	wi := from / wordBits
	w := v.words[wi] >> (uint(from) % wordBits)
	if w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(v.words); wi++ {
		if v.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(v.words[wi])
		}
	}
	return -1
}

// String renders the vector as a 0/1 string, index 0 first.
func (v *Vector) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Words exposes the backing words (read-only by convention). The final
// word's bits beyond Len are always zero.
func (v *Vector) Words() []uint64 { return v.words }

// AppendTo writes the vector's bits to w, in index order.
func (v *Vector) AppendTo(w BitWriter) {
	for i := 0; i < v.n; i++ {
		w.WriteBit(v.Get(i))
	}
}

// ReadVector reads an n-bit vector from r.
func ReadVector(r BitReader, n int) (*Vector, error) {
	v := New(n)
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		if b {
			v.Set(i)
		}
	}
	return v, nil
}
