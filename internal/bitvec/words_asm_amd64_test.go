//go:build amd64 && !purego

package bitvec

import "testing"

// Direct asm-vs-Go differential coverage. The dispatched public
// kernels only reach the assembly at or above kernelMinWords, so this
// file calls the assembly entry points directly for every length
// 1..256 (every scalar-tail residue mod 16 at several trip counts)
// plus large operands, over the same pattern matrix and unaligned
// carving as the portable suite. Skipped on hardware without AVX2.

func requireAVX2(t *testing.T) {
	t.Helper()
	if !hwAVX2 {
		t.Skip("CPU lacks AVX2; assembly kernels not selectable")
	}
}

func asmTestLengths() []int {
	ls := make([]int, 0, 300)
	for n := 1; n <= 256; n++ {
		ls = append(ls, n)
	}
	ls = append(ls, 1000, 1563, 4099)
	return ls
}

func TestAsmKernelsMatchGo(t *testing.T) {
	requireAVX2(t)
	for _, n := range asmTestLengths() {
		forEachOperandPair(t, n, func(name string, a, b []uint64) {
			if got, want := countWordsAVX2(&a[0], n), countWordsGo(a); got != want {
				t.Fatalf("countWordsAVX2 n=%d %s: got %d want %d", n, name, got, want)
			}
			if got, want := andCountWordsAVX2(&a[0], &b[0], n), andCountWordsGo(a, b); got != want {
				t.Fatalf("andCountWordsAVX2 n=%d %s: got %d want %d", n, name, got, want)
			}
			if got, want := andNotCountWordsAVX2(&a[0], &b[0], n), andNotCountWordsGo(a, b); got != want {
				t.Fatalf("andNotCountWordsAVX2 n=%d %s: got %d want %d", n, name, got, want)
			}

			dstA := make([]uint64, n)
			dstG := make([]uint64, n)
			ca := andIntoAVX2(&dstA[0], &a[0], &b[0], n)
			cg := andIntoGo(dstG, a, b)
			if ca != cg {
				t.Fatalf("andIntoAVX2 n=%d %s: count %d want %d", n, name, ca, cg)
			}
			for i := range dstA {
				if dstA[i] != dstG[i] {
					t.Fatalf("andIntoAVX2 n=%d %s: dst[%d] = %#x want %#x", n, name, i, dstA[i], dstG[i])
				}
			}
			ca = andNotIntoAVX2(&dstA[0], &a[0], &b[0], n)
			cg = andNotIntoGo(dstG, a, b)
			if ca != cg {
				t.Fatalf("andNotIntoAVX2 n=%d %s: count %d want %d", n, name, ca, cg)
			}
			for i := range dstA {
				if dstA[i] != dstG[i] {
					t.Fatalf("andNotIntoAVX2 n=%d %s: dst[%d] = %#x want %#x", n, name, i, dstA[i], dstG[i])
				}
			}
		})
	}
}

// TestAsmKernelsAliased drives the Into assembly with dst aliasing an
// operand exactly, against the Go kernels on copies.
func TestAsmKernelsAliased(t *testing.T) {
	requireAVX2(t)
	for _, n := range []int{1, 3, 4, 15, 16, 17, 63, 64, 157, 1563} {
		forEachOperandPair(t, n, func(name string, a, b []uint64) {
			aOrig := append([]uint64(nil), a...)
			bOrig := append([]uint64(nil), b...)
			ref := make([]uint64, n)

			cg := andIntoGo(ref, aOrig, bOrig)
			if ca := andIntoAVX2(&a[0], &a[0], &b[0], n); ca != cg {
				t.Fatalf("andIntoAVX2 dst=a n=%d %s: count %d want %d", n, name, ca, cg)
			}
			for i := range a {
				if a[i] != ref[i] {
					t.Fatalf("andIntoAVX2 dst=a n=%d %s: word %d mismatch", n, name, i)
				}
			}
			copy(a, aOrig)

			cg = andNotIntoGo(ref, aOrig, bOrig)
			if ca := andNotIntoAVX2(&b[0], &a[0], &b[0], n); ca != cg {
				t.Fatalf("andNotIntoAVX2 dst=b n=%d %s: count %d want %d", n, name, ca, cg)
			}
			for i := range b {
				if b[i] != ref[i] {
					t.Fatalf("andNotIntoAVX2 dst=b n=%d %s: word %d mismatch", n, name, i)
				}
			}
			copy(b, bOrig)
		})
	}
}

// TestDispatchCrossover pins the dispatch rule itself: below
// kernelMinWords the public kernels must agree with the Go loops (they
// ARE the Go loops), and at/above it with the assembly — both already
// covered bit-for-bit elsewhere; here we assert the feature string and
// that toggling SetPureGo actually changes the selected path's
// observable state.
func TestDispatchCrossover(t *testing.T) {
	requireAVX2(t)
	if !kernelAVX2 {
		t.Fatal("AVX2 hardware present but kernels not enabled at init")
	}
	if KernelFeatures() != "avx2=true" {
		t.Fatalf("KernelFeatures = %q, want avx2=true", KernelFeatures())
	}
	wasPure := SetPureGo(true)
	if wasPure {
		t.Fatal("SetPureGo(true) reported pure-Go already active with AVX2 live")
	}
	if kernelAVX2 || KernelFeatures() != "avx2=false" {
		t.Fatal("SetPureGo(true) did not disable the assembly path")
	}
	SetPureGo(false)
	if !kernelAVX2 || KernelFeatures() != "avx2=true" {
		t.Fatal("SetPureGo(false) did not restore the assembly path")
	}
}
