//go:build amd64 && !purego

#include "textflag.h"

// AVX2 versions of the five 2-operand word kernels. Each processes 16
// words (four 256-bit vectors) per main-loop trip, then single
// vectors, then a scalar POPCNTQ tail, so any length and any tail
// residue mod 16 is handled in one call. Loads and stores are
// unaligned (VMOVDQU): the dataset and miner arenas guarantee only
// 8-byte alignment.
//
// Popcount of a 256-bit vector uses the VPSHUFB nibble-LUT technique
// (Mula/Harley–Seal style accumulation): split each byte into nibbles,
// look both up in a 16-entry popcount table with VPSHUFB, and add. The
// byte-wise counts of the four vectors of a trip are summed (max 32
// per byte, far below overflow) and folded into four qword lanes with
// one VPSADBW against zero, then accumulated with VPADDQ. The qword
// accumulator is reduced horizontally once per call.
//
// Register plan (common to all kernels):
//   SI/DI  input pointers (a, b)     DX  dst pointer (Into kernels)
//   CX     remaining words           AX  running popcount / return
//   Y6     nibble popcount LUT       Y7  0x0f nibble mask
//   Y0     qword accumulator         Y9  zero (VPSADBW operand)
//   Y1-Y4  data                      Y5  NIBPOP scratch
//   BX     scalar-tail scratch

// NIBPOP replaces each byte of V with its popcount, using S as
// scratch. The VPSRLW shifts nibble garbage across byte lanes, which
// the 0x0f mask then clears, so a 16-bit shift is safe for byte data.
#define NIBPOP(V, S) \
	VPSRLW  $4, V, S;  \
	VPAND   Y7, V, V;  \
	VPAND   Y7, S, S;  \
	VPSHUFB V, Y6, V;  \
	VPSHUFB S, Y6, S;  \
	VPADDB  S, V, V

// KERNELINIT loads the LUT/mask constants and zeroes the accumulators.
#define KERNELINIT \
	VMOVDQU nibblePop<>(SB), Y6;  \
	VMOVDQU nibbleMask<>(SB), Y7; \
	VPXOR   Y0, Y0, Y0;           \
	VPXOR   Y9, Y9, Y9;           \
	XORQ    AX, AX

// REDUCE folds the qword accumulator Y0 into AX and leaves AVX state
// clean for the scalar tail and the return to Go code.
#define REDUCE \
	VEXTRACTI128 $1, Y0, X1; \
	VPADDQ       X1, X0, X0; \
	VPSRLDQ      $8, X0, X1; \
	VPADDQ       X1, X0, X0; \
	MOVQ         X0, AX;     \
	VZEROUPPER

DATA nibblePop<>+0x00(SB)/8, $0x0302020102010100
DATA nibblePop<>+0x08(SB)/8, $0x0403030203020201
DATA nibblePop<>+0x10(SB)/8, $0x0302020102010100
DATA nibblePop<>+0x18(SB)/8, $0x0403030203020201
GLOBL nibblePop<>(SB), RODATA|NOPTR, $32

DATA nibbleMask<>+0x00(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+0x08(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+0x10(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+0x18(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibbleMask<>(SB), RODATA|NOPTR, $32

// func countWordsAVX2(p *uint64, n int) int
TEXT ·countWordsAVX2(SB), NOSPLIT, $0-24
	MOVQ p+0(FP), SI
	MOVQ n+8(FP), CX
	KERNELINIT

loop16:
	CMPQ    CX, $16
	JLT     vec4
	VMOVDQU (SI), Y1
	NIBPOP(Y1, Y5)
	VMOVDQU 32(SI), Y2
	NIBPOP(Y2, Y5)
	VPADDB  Y2, Y1, Y1
	VMOVDQU 64(SI), Y3
	NIBPOP(Y3, Y5)
	VPADDB  Y3, Y1, Y1
	VMOVDQU 96(SI), Y4
	NIBPOP(Y4, Y5)
	VPADDB  Y4, Y1, Y1
	VPSADBW Y9, Y1, Y1
	VPADDQ  Y1, Y0, Y0
	ADDQ    $128, SI
	SUBQ    $16, CX
	JMP     loop16

vec4:
	CMPQ    CX, $4
	JLT     reduce
	VMOVDQU (SI), Y1
	NIBPOP(Y1, Y5)
	VPSADBW Y9, Y1, Y1
	VPADDQ  Y1, Y0, Y0
	ADDQ    $32, SI
	SUBQ    $4, CX
	JMP     vec4

reduce:
	REDUCE

tail:
	TESTQ   CX, CX
	JZ      done
	POPCNTQ (SI), BX
	ADDQ    BX, AX
	ADDQ    $8, SI
	DECQ    CX
	JMP     tail

done:
	MOVQ AX, ret+16(FP)
	RET

// func andCountWordsAVX2(a, b *uint64, n int) int
TEXT ·andCountWordsAVX2(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	KERNELINIT

loop16:
	CMPQ    CX, $16
	JLT     vec4
	VMOVDQU (SI), Y1
	VPAND   (DI), Y1, Y1
	NIBPOP(Y1, Y5)
	VMOVDQU 32(SI), Y2
	VPAND   32(DI), Y2, Y2
	NIBPOP(Y2, Y5)
	VPADDB  Y2, Y1, Y1
	VMOVDQU 64(SI), Y3
	VPAND   64(DI), Y3, Y3
	NIBPOP(Y3, Y5)
	VPADDB  Y3, Y1, Y1
	VMOVDQU 96(SI), Y4
	VPAND   96(DI), Y4, Y4
	NIBPOP(Y4, Y5)
	VPADDB  Y4, Y1, Y1
	VPSADBW Y9, Y1, Y1
	VPADDQ  Y1, Y0, Y0
	ADDQ    $128, SI
	ADDQ    $128, DI
	SUBQ    $16, CX
	JMP     loop16

vec4:
	CMPQ    CX, $4
	JLT     reduce
	VMOVDQU (SI), Y1
	VPAND   (DI), Y1, Y1
	NIBPOP(Y1, Y5)
	VPSADBW Y9, Y1, Y1
	VPADDQ  Y1, Y0, Y0
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $4, CX
	JMP     vec4

reduce:
	REDUCE

tail:
	TESTQ   CX, CX
	JZ      done
	MOVQ    (SI), BX
	ANDQ    (DI), BX
	POPCNTQ BX, BX
	ADDQ    BX, AX
	ADDQ    $8, SI
	ADDQ    $8, DI
	DECQ    CX
	JMP     tail

done:
	MOVQ AX, ret+24(FP)
	RET

// func andNotCountWordsAVX2(a, b *uint64, n int) int
//
// Computes popcount(a &^ b). VPANDN in Go operand order is
// VPANDN src2, src1, dst = ^src1 & src2, so the b vector is loaded
// into the src1 slot and a streams through as the memory operand.
TEXT ·andNotCountWordsAVX2(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	KERNELINIT

loop16:
	CMPQ    CX, $16
	JLT     vec4
	VMOVDQU (DI), Y1
	VPANDN  (SI), Y1, Y1
	NIBPOP(Y1, Y5)
	VMOVDQU 32(DI), Y2
	VPANDN  32(SI), Y2, Y2
	NIBPOP(Y2, Y5)
	VPADDB  Y2, Y1, Y1
	VMOVDQU 64(DI), Y3
	VPANDN  64(SI), Y3, Y3
	NIBPOP(Y3, Y5)
	VPADDB  Y3, Y1, Y1
	VMOVDQU 96(DI), Y4
	VPANDN  96(SI), Y4, Y4
	NIBPOP(Y4, Y5)
	VPADDB  Y4, Y1, Y1
	VPSADBW Y9, Y1, Y1
	VPADDQ  Y1, Y0, Y0
	ADDQ    $128, SI
	ADDQ    $128, DI
	SUBQ    $16, CX
	JMP     loop16

vec4:
	CMPQ    CX, $4
	JLT     reduce
	VMOVDQU (DI), Y1
	VPANDN  (SI), Y1, Y1
	NIBPOP(Y1, Y5)
	VPSADBW Y9, Y1, Y1
	VPADDQ  Y1, Y0, Y0
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $4, CX
	JMP     vec4

reduce:
	REDUCE

tail:
	TESTQ   CX, CX
	JZ      done
	MOVQ    (DI), BX
	NOTQ    BX
	ANDQ    (SI), BX
	POPCNTQ BX, BX
	ADDQ    BX, AX
	ADDQ    $8, SI
	ADDQ    $8, DI
	DECQ    CX
	JMP     tail

done:
	MOVQ AX, ret+24(FP)
	RET

// func andIntoAVX2(dst, a, b *uint64, n int) int
//
// dst = a AND b, returning popcount(dst). Each vector is stored
// before NIBPOP destroys it; dst may equal a and/or b because every
// 32-byte block is fully loaded before it is stored (partial overlap
// at a non-zero offset is not supported, matching the Go kernel's
// documented contract).
TEXT ·andIntoAVX2(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DI
	MOVQ n+24(FP), CX
	KERNELINIT

loop16:
	CMPQ    CX, $16
	JLT     vec4
	VMOVDQU (SI), Y1
	VPAND   (DI), Y1, Y1
	VMOVDQU Y1, (DX)
	NIBPOP(Y1, Y5)
	VMOVDQU 32(SI), Y2
	VPAND   32(DI), Y2, Y2
	VMOVDQU Y2, 32(DX)
	NIBPOP(Y2, Y5)
	VPADDB  Y2, Y1, Y1
	VMOVDQU 64(SI), Y3
	VPAND   64(DI), Y3, Y3
	VMOVDQU Y3, 64(DX)
	NIBPOP(Y3, Y5)
	VPADDB  Y3, Y1, Y1
	VMOVDQU 96(SI), Y4
	VPAND   96(DI), Y4, Y4
	VMOVDQU Y4, 96(DX)
	NIBPOP(Y4, Y5)
	VPADDB  Y4, Y1, Y1
	VPSADBW Y9, Y1, Y1
	VPADDQ  Y1, Y0, Y0
	ADDQ    $128, SI
	ADDQ    $128, DI
	ADDQ    $128, DX
	SUBQ    $16, CX
	JMP     loop16

vec4:
	CMPQ    CX, $4
	JLT     reduce
	VMOVDQU (SI), Y1
	VPAND   (DI), Y1, Y1
	VMOVDQU Y1, (DX)
	NIBPOP(Y1, Y5)
	VPSADBW Y9, Y1, Y1
	VPADDQ  Y1, Y0, Y0
	ADDQ    $32, SI
	ADDQ    $32, DI
	ADDQ    $32, DX
	SUBQ    $4, CX
	JMP     vec4

reduce:
	REDUCE

tail:
	TESTQ   CX, CX
	JZ      done
	MOVQ    (SI), BX
	ANDQ    (DI), BX
	MOVQ    BX, (DX)
	POPCNTQ BX, BX
	ADDQ    BX, AX
	ADDQ    $8, SI
	ADDQ    $8, DI
	ADDQ    $8, DX
	DECQ    CX
	JMP     tail

done:
	MOVQ AX, ret+32(FP)
	RET

// func andNotIntoAVX2(dst, a, b *uint64, n int) int
//
// dst = a AND NOT b, returning popcount(dst). Same structure and
// aliasing contract as andIntoAVX2; same VPANDN operand order as
// andNotCountWordsAVX2.
TEXT ·andNotIntoAVX2(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DI
	MOVQ n+24(FP), CX
	KERNELINIT

loop16:
	CMPQ    CX, $16
	JLT     vec4
	VMOVDQU (DI), Y1
	VPANDN  (SI), Y1, Y1
	VMOVDQU Y1, (DX)
	NIBPOP(Y1, Y5)
	VMOVDQU 32(DI), Y2
	VPANDN  32(SI), Y2, Y2
	VMOVDQU Y2, 32(DX)
	NIBPOP(Y2, Y5)
	VPADDB  Y2, Y1, Y1
	VMOVDQU 64(DI), Y3
	VPANDN  64(SI), Y3, Y3
	VMOVDQU Y3, 64(DX)
	NIBPOP(Y3, Y5)
	VPADDB  Y3, Y1, Y1
	VMOVDQU 96(DI), Y4
	VPANDN  96(SI), Y4, Y4
	VMOVDQU Y4, 96(DX)
	NIBPOP(Y4, Y5)
	VPADDB  Y4, Y1, Y1
	VPSADBW Y9, Y1, Y1
	VPADDQ  Y1, Y0, Y0
	ADDQ    $128, SI
	ADDQ    $128, DI
	ADDQ    $128, DX
	SUBQ    $16, CX
	JMP     loop16

vec4:
	CMPQ    CX, $4
	JLT     reduce
	VMOVDQU (DI), Y1
	VPANDN  (SI), Y1, Y1
	VMOVDQU Y1, (DX)
	NIBPOP(Y1, Y5)
	VPSADBW Y9, Y1, Y1
	VPADDQ  Y1, Y0, Y0
	ADDQ    $32, SI
	ADDQ    $32, DI
	ADDQ    $32, DX
	SUBQ    $4, CX
	JMP     vec4

reduce:
	REDUCE

tail:
	TESTQ   CX, CX
	JZ      done
	MOVQ    (DI), BX
	NOTQ    BX
	ANDQ    (SI), BX
	MOVQ    BX, (DX)
	POPCNTQ BX, BX
	ADDQ    BX, AX
	ADDQ    $8, SI
	ADDQ    $8, DI
	ADDQ    $8, DX
	DECQ    CX
	JMP     tail

done:
	MOVQ AX, ret+32(FP)
	RET
