package bitvec

import "fmt"

// Matrix is a dense rows×cols bit matrix stored row-major as packed
// words. Rows are independently addressable as Vectors that share the
// matrix storage, so mutating a returned row mutates the matrix.
type Matrix struct {
	rows, cols int
	stride     int // words per row
	words      []uint64
}

// NewMatrix returns a zeroed rows×cols bit matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("bitvec: negative matrix dimension")
	}
	stride := wordsFor(cols)
	return &Matrix{rows: rows, cols: cols, stride: stride, words: make([]uint64, rows*stride)}
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Get reports whether the bit at (r, c) is set.
func (m *Matrix) Get(r, c int) bool {
	m.check(r, c)
	w := m.words[r*m.stride+c/wordBits]
	return w>>(uint(c)%wordBits)&1 == 1
}

// Set sets the bit at (r, c) to 1.
func (m *Matrix) Set(r, c int) {
	m.check(r, c)
	m.words[r*m.stride+c/wordBits] |= 1 << (uint(c) % wordBits)
}

// Clear sets the bit at (r, c) to 0.
func (m *Matrix) Clear(r, c int) {
	m.check(r, c)
	m.words[r*m.stride+c/wordBits] &^= 1 << (uint(c) % wordBits)
}

// SetBool sets the bit at (r, c) to b.
func (m *Matrix) SetBool(r, c int, b bool) {
	if b {
		m.Set(r, c)
	} else {
		m.Clear(r, c)
	}
}

func (m *Matrix) check(r, c int) {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		panic(fmt.Sprintf("bitvec: matrix index (%d,%d) out of range %dx%d", r, c, m.rows, m.cols))
	}
}

// Row returns row r as a Vector sharing the matrix storage.
func (m *Matrix) Row(r int) *Vector {
	if r < 0 || r >= m.rows {
		panic(fmt.Sprintf("bitvec: row %d out of range [0,%d)", r, m.rows))
	}
	return &Vector{n: m.cols, words: m.words[r*m.stride : (r+1)*m.stride]}
}

// SetRow copies v into row r. v must have length Cols.
func (m *Matrix) SetRow(r int, v *Vector) {
	if v.n != m.cols {
		panic(fmt.Sprintf("bitvec: SetRow length %d != cols %d", v.n, m.cols))
	}
	copy(m.words[r*m.stride:(r+1)*m.stride], v.words)
}

// Column extracts column c as a fresh Vector of length Rows.
func (m *Matrix) Column(c int) *Vector {
	if c < 0 || c >= m.cols {
		panic(fmt.Sprintf("bitvec: column %d out of range [0,%d)", c, m.cols))
	}
	v := New(m.rows)
	for r := 0; r < m.rows; r++ {
		if m.Get(r, c) {
			v.Set(r)
		}
	}
	return v
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.words, m.words)
	return c
}

// Equal reports whether m and o have identical shape and bits.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.words {
		if m.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// String renders the matrix one row per line.
func (m *Matrix) String() string {
	s := ""
	for r := 0; r < m.rows; r++ {
		s += m.Row(r).String()
		if r != m.rows-1 {
			s += "\n"
		}
	}
	return s
}
