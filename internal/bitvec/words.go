package bitvec

import "math/bits"

// Word-slice kernels: the zero-allocation building blocks of the
// dataset query engine. The dataset package stores databases as one
// contiguous row-major []uint64 arena and column indexes as one
// contiguous column-major arena; these functions operate directly on
// word slices carved out of those arenas so that the hot query paths
// (exact frequency counts, Eclat intersections, sketch estimates)
// never materialize intermediate Vectors.
//
// All kernels treat their inputs as equal-length packed bit strings;
// bits past the logical length must be zero (Vector and the dataset
// arena both maintain that invariant). Kernels are written as single
// fused passes — one load per word, popcount in the same loop — so a
// k-way intersection count touches each cache line exactly once
// instead of once per And plus once per Count.
//
// The k-ary kernels process batchWords (4) words per loop iteration:
// hoisting four words of the accumulator per trip amortizes the inner
// column loop's setup and keeps four independent AND/popcount chains
// in flight, which is the portable (no build-tagged assembly)
// equivalent of a SIMD-width inner loop. A scalar tail handles the
// last len%4 words.
//
// Kernel layer. The five 2-operand kernels (CountWords,
// AndCountWords, AndNotCountWords, AndInto, AndNotInto) dispatch at
// runtime between the portable Go loops in this file and hand-written
// AVX2 assembly (words_amd64.s): package init probes the CPU via
// CPUID/XGETBV (cpu_amd64.go) and enables the vector kernels only on
// amd64 with AVX2 and OS-saved YMM state, and each call takes the
// assembly only at or above kernelMinWords operand words — below the
// crossover the call/VZEROUPPER overhead beats the vector win and the
// Go loop is used. `-tags purego` (any arch) and non-amd64 builds
// compile only the Go loops. See dispatch_amd64.go / dispatch_purego.go
// and the README "Kernel layer" section.
//
// The Go forms of the 2-operand kernels stay as plain range loops on
// purpose: measured on the reference hardware (Xeon 2.1GHz, go1.24),
// an indexed 4-way *Go-level* unroll of those loops is 20–35% *slower*
// than the compiler's range-loop codegen at both L1-resident
// (157-word) and L2 (1563-word) operand sizes — the compiler already
// eliminates bounds checks in the range form and the core's
// out-of-order window extracts the ILP without help. That negative
// result is scoped to Go-level unrolls: real SIMD (one VPAND +
// nibble-LUT popcount per 32-byte vector) removes per-word work
// instead of merely rearranging it, and measures well ahead of the
// range loop above the crossover. Go-level batching still pays where
// it removes per-word work (the k-ary inner loop of AndCountAll) or
// per-word branches (the multi-word containment test).

// batchWords is the kernel unroll factor: four 64-bit lanes per
// iteration, the widest batch that keeps every accumulator chain in
// registers on amd64 and arm64 without spilling.
const batchWords = 4

// CountWords returns the number of set bits in w.
func CountWords(w []uint64) int {
	return archCountWords(w)
}

func countWordsGo(w []uint64) int {
	c := 0
	for _, x := range w {
		c += bits.OnesCount64(x)
	}
	return c
}

// AndCountWords returns popcount(a AND b) in a single fused pass.
// The slices must have the same length.
func AndCountWords(a, b []uint64) int {
	if len(a) != len(b) {
		panic("bitvec: AndCountWords length mismatch")
	}
	return archAndCountWords(a, b)
}

func andCountWordsGo(a, b []uint64) int {
	c := 0
	for i, x := range a {
		c += bits.OnesCount64(x & b[i])
	}
	return c
}

// ContainsAllWords reports whether every bit set in t is also set in
// row (t ⊆ row). t must not be longer than row; extra row words are
// ignored, matching Vector.ContainsAll.
func ContainsAllWords(row, t []uint64) bool {
	if len(t) > len(row) {
		panic("bitvec: ContainsAllWords pattern longer than row")
	}
	i := 0
	for ; i+batchWords <= len(t); i += batchWords {
		if (t[i]&^row[i])|(t[i+1]&^row[i+1])|
			(t[i+2]&^row[i+2])|(t[i+3]&^row[i+3]) != 0 {
			return false
		}
	}
	for ; i < len(t); i++ {
		if t[i]&^row[i] != 0 {
			return false
		}
	}
	return true
}

// AndInto sets dst = a AND b and returns popcount(dst), fused into one
// pass. dst may alias a and/or b exactly (the common in-place
// accumulator pattern is AndInto(acc, acc, col)); partially
// overlapping slices are not supported. All three slices must have the
// same length.
func AndInto(dst, a, b []uint64) int {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("bitvec: AndInto length mismatch")
	}
	return archAndInto(dst, a, b)
}

func andIntoGo(dst, a, b []uint64) int {
	c := 0
	for i := range dst {
		w := a[i] & b[i]
		dst[i] = w
		c += bits.OnesCount64(w)
	}
	return c
}

// AndNotCountWords returns popcount(a AND NOT b) in a single fused
// pass. The slices must have the same length. With b a tidset and a its
// parent's tidset this is the size of the dEclat diffset without
// materializing it.
func AndNotCountWords(a, b []uint64) int {
	if len(a) != len(b) {
		panic("bitvec: AndNotCountWords length mismatch")
	}
	return archAndNotCountWords(a, b)
}

func andNotCountWordsGo(a, b []uint64) int {
	c := 0
	for i, x := range a {
		c += bits.OnesCount64(x &^ b[i])
	}
	return c
}

// AndNotInto sets dst = a AND NOT b and returns popcount(dst), fused
// into one pass — the diffset construction kernel of the dEclat miner
// (t(P)∖t(P∪{a}), or d(PY)∖d(PX) between sibling diffsets). dst may
// alias a and/or b exactly; partially overlapping slices are not
// supported. All three slices must have the same length.
func AndNotInto(dst, a, b []uint64) int {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("bitvec: AndNotInto length mismatch")
	}
	return archAndNotInto(dst, a, b)
}

func andNotIntoGo(dst, a, b []uint64) int {
	c := 0
	for i := range dst {
		w := a[i] &^ b[i]
		dst[i] = w
		c += bits.OnesCount64(w)
	}
	return c
}

// cappedBlockWords is the budget-check granularity of the capped
// kernels: 32 words (2 KiB, four cache lines) per check keeps the
// branch out of the inner loop while stopping a doomed candidate
// within one block of proving it. The block body runs through the
// dispatched 2-operand kernels, so on AVX2 hardware each block is one
// assembly call (32 words sits above kernelMinWords); re-measured
// against the assembly kernels, 32 still beats 64 on the dense mining
// workload — the wider block halves the call overhead but pays a full
// extra 2 KiB of scan on every pruned candidate, and pruning is the
// common case there.
const cappedBlockWords = 32

// AndNotIntoCapped sets dst = a AND NOT b like AndNotInto, but gives
// up as soon as the running popcount exceeds budget, re-checking every
// cappedBlockWords words. It returns the count so far and whether the
// full pass completed; after an early exit dst's remaining words are
// unspecified. This is the dEclat pruning kernel: a diffset larger
// than sup(parent) − minCount belongs to an infrequent candidate, so
// on dense databases most failing candidates abort after a fraction of
// the scan that the plain kernel would always pay in full.
func AndNotIntoCapped(dst, a, b []uint64, budget int) (int, bool) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("bitvec: AndNotIntoCapped length mismatch")
	}
	c := 0
	for lo := 0; lo < len(dst); {
		hi := lo + cappedBlockWords
		if hi > len(dst) {
			hi = len(dst)
		}
		c += archAndNotInto(dst[lo:hi], a[lo:hi], b[lo:hi])
		if c > budget {
			return c, false
		}
		lo = hi
	}
	return c, true
}

// AndIntoCapped is AndNotIntoCapped for dst = a AND b — the diffset of
// a tidset parent against a diffset sibling, or (with budget an upper
// bound that cannot be exceeded, e.g. popcount(a) when dst
// accumulates an intersection) an exact fused AND+popcount that shares
// the capped block loop.
func AndIntoCapped(dst, a, b []uint64, budget int) (int, bool) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("bitvec: AndIntoCapped length mismatch")
	}
	c := 0
	for lo := 0; lo < len(dst); {
		hi := lo + cappedBlockWords
		if hi > len(dst) {
			hi = len(dst)
		}
		c += archAndInto(dst[lo:hi], a[lo:hi], b[lo:hi])
		if c > budget {
			return c, false
		}
		lo = hi
	}
	return c, true
}

// NotInto sets dst = NOT a over the first n bits — bits at positions
// ≥ n in the final word are zeroed, maintaining the packed-string
// invariant — and returns popcount(dst). len(dst) and len(a) must both
// equal wordsFor(n). It builds root-level diffsets: the complement of a
// dense attribute column is the rows *not* containing the attribute.
func NotInto(dst, a []uint64, n int) int {
	nw := wordsFor(n)
	if len(dst) != nw || len(a) != nw {
		panic("bitvec: NotInto word count mismatch")
	}
	c := 0
	for i := range dst {
		w := ^a[i]
		if i == nw-1 && n%wordBits != 0 {
			w &= (uint64(1) << (uint(n) % wordBits)) - 1
		}
		dst[i] = w
		c += bits.OnesCount64(w)
	}
	return c
}

// AndCountAll returns the popcount of the AND of all cols in a single
// pass, without materializing the intersection. It panics if cols is
// empty or the slices differ in length. The caller's backing array for
// cols is not retained, so a stack-allocated [k][]uint64 may be passed.
func AndCountAll(cols [][]uint64) int {
	switch len(cols) {
	case 0:
		panic("bitvec: AndCountAll of no columns")
	case 1:
		return CountWords(cols[0])
	case 2:
		return AndCountWords(cols[0], cols[1])
	}
	first := cols[0]
	for _, c := range cols[1:] {
		if len(c) != len(first) {
			panic("bitvec: AndCountAll length mismatch")
		}
	}
	n := 0
	i := 0
	for ; i+batchWords <= len(first); i += batchWords {
		w0, w1 := first[i], first[i+1]
		w2, w3 := first[i+2], first[i+3]
		for _, c := range cols[1:] {
			w0 &= c[i]
			w1 &= c[i+1]
			w2 &= c[i+2]
			w3 &= c[i+3]
		}
		n += bits.OnesCount64(w0) + bits.OnesCount64(w1) +
			bits.OnesCount64(w2) + bits.OnesCount64(w3)
	}
	for ; i < len(first); i++ {
		w := first[i]
		for _, c := range cols[1:] {
			w &= c[i]
		}
		n += bits.OnesCount64(w)
	}
	return n
}

// Wrap returns a Vector of length n that views words as its backing
// storage, without copying. Mutations through the returned Vector are
// visible in words and vice versa. len(words) must be exactly
// wordsFor(n), and bits past n must be zero (the Vector invariant).
// Wrap returns a value so that callers building view tables (for
// example, a column index) pay no per-view allocation.
func Wrap(n int, words []uint64) Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	if len(words) != wordsFor(n) {
		panic("bitvec: Wrap word count mismatch")
	}
	return Vector{n: n, words: words}
}

// WriteWords appends the first n bits of words to w in index order,
// producing the identical stream to writing each bit individually.
func WriteWords(w BitWriter, words []uint64, n int) {
	for i := 0; n > 0; i++ {
		bitsHere := n
		if bitsHere > wordBits {
			bitsHere = wordBits
		}
		w.WriteUint(words[i], bitsHere)
		n -= bitsHere
	}
}

// ReadWords reads n bits from r into words (which must hold at least
// wordsFor(n) words), in index order.
func ReadWords(r BitReader, words []uint64, n int) error {
	for i := 0; n > 0; i++ {
		bitsHere := n
		if bitsHere > wordBits {
			bitsHere = wordBits
		}
		v, err := r.ReadUint(bitsHere)
		if err != nil {
			return err
		}
		words[i] = v
		n -= bitsHere
	}
	return nil
}
