package bitvec

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/iotest"
)

// writeMixed drives a BitWriter through every write shape with a
// deterministic pattern.
func writeMixed(w BitWriter, n int) {
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			w.WriteBit(i%5 == 0)
		case 1:
			w.WriteUint(uint64(i)*0x9e3779b97f4a7c15, 1+i%64)
		default:
			w.WriteBytes([]byte{byte(i), byte(i >> 3)})
		}
	}
}

// TestIOWriterMatchesWriter pins the streaming writer to the in-memory
// one: identical bit sequences produce identical bytes and BitLen.
func TestIOWriterMatchesWriter(t *testing.T) {
	var mem Writer
	writeMixed(&mem, 500)
	var buf bytes.Buffer
	iw := NewIOWriter(&buf)
	writeMixed(iw, 500)
	if iw.BitLen() != mem.BitLen() {
		t.Fatalf("BitLen %d vs %d", iw.BitLen(), mem.BitLen())
	}
	if err := iw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := iw.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), mem.Bytes()) {
		t.Fatalf("streamed bytes differ from in-memory bytes")
	}
}

// TestIOReaderMatchesReader pins the streaming reader to the in-memory
// one across read shapes and underlying reader granularities.
func TestIOReaderMatchesReader(t *testing.T) {
	var mem Writer
	writeMixed(&mem, 500)
	data, nbits := mem.Bytes(), mem.BitLen()
	for name, src := range map[string]io.Reader{
		"whole":   bytes.NewReader(data),
		"onebyte": iotest.OneByteReader(bytes.NewReader(data)),
		"half":    iotest.HalfReader(bytes.NewReader(data)),
	} {
		ref := NewReader(data, nbits)
		got := NewIOReader(src, nbits)
		for i := 0; got.Remaining() > 0; i++ {
			if got.Remaining() != ref.Remaining() {
				t.Fatalf("%s: Remaining %d vs %d", name, got.Remaining(), ref.Remaining())
			}
			switch i % 3 {
			case 0:
				a, errA := ref.ReadBit()
				b, errB := got.ReadBit()
				if a != b || (errA == nil) != (errB == nil) {
					t.Fatalf("%s: ReadBit %v/%v vs %v/%v", name, a, errA, b, errB)
				}
			case 1:
				n := 1 + i%64
				if n > ref.Remaining() {
					n = ref.Remaining()
				}
				a, errA := ref.ReadUint(n)
				b, errB := got.ReadUint(n)
				if a != b || (errA == nil) != (errB == nil) {
					t.Fatalf("%s: ReadUint(%d) %x/%v vs %x/%v", name, n, a, errA, b, errB)
				}
			default:
				n := i % 4
				if n*8 > ref.Remaining() {
					n = 0
				}
				a, errA := ref.ReadBytes(n)
				b, errB := got.ReadBytes(n)
				if !bytes.Equal(a, b) || (errA == nil) != (errB == nil) {
					t.Fatalf("%s: ReadBytes(%d) mismatch", name, n)
				}
			}
		}
		if _, err := got.ReadBit(); !errors.Is(err, ErrShortStream) {
			t.Fatalf("%s: read past declared end: %v", name, err)
		}
	}
}

// TestIOReaderUnderlyingTruncation asserts a source that ends before
// the declared bit count fails with io.ErrUnexpectedEOF (the signal
// the envelope layer maps to its truncation sentinel) and never
// touches the source past the declared length.
func TestIOReaderUnderlyingTruncation(t *testing.T) {
	data := bytes.Repeat([]byte{0xa5}, 100)
	r := NewIOReader(bytes.NewReader(data[:40]), 100*8)
	var lastErr error
	for i := 0; i < 100*8; i++ {
		if _, err := r.ReadBit(); err != nil {
			lastErr = err
			break
		}
	}
	if !errors.Is(lastErr, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated source: err = %v, want io.ErrUnexpectedEOF", lastErr)
	}

	// Declared length caps the bytes pulled from the source: after
	// reading all declared bits, the byte past the end is untouched.
	src := bytes.NewReader(data)
	r = NewIOReader(src, 24)
	if _, err := r.ReadUint(24); err != nil {
		t.Fatal(err)
	}
	if r.BytesRead() != 3 || src.Len() != 97 {
		t.Fatalf("read %d bytes (src has %d left), want exactly the 3 declared", r.BytesRead(), src.Len())
	}
}
