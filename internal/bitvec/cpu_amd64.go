//go:build amd64 && !purego

package bitvec

// Hand-rolled CPUID feature detection, so the package stays
// stdlib-only (golang.org/x/sys/cpu would report the same bits).
// AVX2 use requires all of:
//
//   - CPUID.1:ECX.OSXSAVE[27] — the OS exposes XGETBV;
//   - CPUID.1:ECX.AVX[28] — the AVX instruction encodings exist;
//   - XCR0[2:1] == 11b — the OS saves/restores XMM and YMM state on
//     context switch (without this, AVX registers are corrupted across
//     preemption even though the instructions execute);
//   - CPUID.7.0:EBX.AVX2[5] — the integer 256-bit operations the
//     kernels use (VPAND/VPANDN/VPSHUFB/VPSADBW on ymm).

// cpuid executes CPUID with the given leaf/subleaf (cpuid_amd64.s).
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (cpuid_amd64.s). Only call if OSXSAVE is set.
func xgetbv() (eax, edx uint32)

func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsaveBit = 1 << 27
	const avxBit = 1 << 28
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	xcr0, _ := xgetbv()
	const ymmState = 0x6 // XMM (bit 1) + YMM (bit 2)
	if xcr0&ymmState != ymmState {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}
