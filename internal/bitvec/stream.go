package bitvec

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// ErrShortStream is returned by Reader methods when the stream is
// exhausted before the requested number of bits could be read.
var ErrShortStream = errors.New("bitvec: read past end of bit stream")

// BitWriter is the sink side of sketch serialization: an LSB-first bit
// stream accepting individual bits, fixed-width integers and raw bytes.
// Writer (in-memory) and IOWriter (streaming to an io.Writer) both
// implement it, so codecs encode once and run over either.
type BitWriter interface {
	// WriteBit appends one bit.
	WriteBit(b bool)
	// WriteUint appends the low `bits` bits of v, least significant
	// first. bits must be in [0, 64].
	WriteUint(v uint64, bits int)
	// WriteBytes appends the bytes of p as 8·len(p) bits.
	WriteBytes(p []byte)
	// BitLen returns the number of bits written so far.
	BitLen() int
}

// BitReader is the source side of sketch deserialization: a bounded
// LSB-first bit stream. Reader (over an in-memory slice) and IOReader
// (incremental, over an io.Reader) both implement it, so decoders never
// require the full payload up front.
type BitReader interface {
	// ReadBit reads one bit.
	ReadBit() (bool, error)
	// ReadUint reads `bits` bits as an unsigned integer, least
	// significant bit first. bits must be in [0, 64].
	ReadUint(bits int) (uint64, error)
	// ReadBytes reads 8·n bits as n bytes.
	ReadBytes(n int) ([]byte, error)
	// Remaining returns the number of unread bits before the declared
	// end of the stream.
	Remaining() int
}

// Writer accumulates a bit stream. Bits are packed LSB-first within each
// byte. The zero value is ready to use.
//
// Writer is how sketches serialize themselves: the resulting BitLen is
// the sketch's size |S| in bits per Definition 5 of the paper.
type Writer struct {
	buf  []byte
	nbit int
}

// WriteBit appends one bit.
func (w *Writer) WriteBit(b bool) {
	if w.nbit%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b {
		w.buf[w.nbit/8] |= 1 << (uint(w.nbit) % 8)
	}
	w.nbit++
}

// WriteUint appends the low `bits` bits of v, least significant first.
// bits must be in [0, 64].
func (w *Writer) WriteUint(v uint64, bits int) {
	if bits < 0 || bits > 64 {
		panic(fmt.Sprintf("bitvec: WriteUint bits=%d out of range", bits))
	}
	// Byte-aligned fast path: whole bytes append directly. Encoders
	// write mostly 8·k-bit fields from byte boundaries (rows, counts),
	// so this is the hot case.
	if w.nbit%8 == 0 && bits%8 == 0 {
		for i := 0; i < bits; i += 8 {
			w.buf = append(w.buf, byte(v>>uint(i)))
		}
		w.nbit += bits
		return
	}
	for i := 0; i < bits; i++ {
		w.WriteBit(v>>uint(i)&1 == 1)
	}
}

// WriteBytes appends the bytes of p as 8·len(p) bits.
func (w *Writer) WriteBytes(p []byte) {
	for _, b := range p {
		w.WriteUint(uint64(b), 8)
	}
}

// BitLen returns the number of bits written so far.
func (w *Writer) BitLen() int { return w.nbit }

// Bytes returns the packed stream. The final byte is zero-padded.
// The returned slice aliases the writer's buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// SizeWriter is a BitWriter that counts bits without storing them, so
// exact encoded sizes (the paper's |S|) cost no allocation and no
// buffering — the counting pass of a streaming encode. The zero value
// is ready to use.
type SizeWriter struct{ nbit int }

// WriteBit implements BitWriter.
func (w *SizeWriter) WriteBit(bool) { w.nbit++ }

// WriteUint implements BitWriter.
func (w *SizeWriter) WriteUint(_ uint64, bits int) {
	if bits < 0 || bits > 64 {
		panic(fmt.Sprintf("bitvec: WriteUint bits=%d out of range", bits))
	}
	w.nbit += bits
}

// WriteBytes implements BitWriter.
func (w *SizeWriter) WriteBytes(p []byte) { w.nbit += 8 * len(p) }

// BitLen implements BitWriter.
func (w *SizeWriter) BitLen() int { return w.nbit }

// Reader consumes a bit stream produced by Writer.
type Reader struct {
	buf  []byte
	pos  int // bit position
	nbit int // total valid bits
}

// NewReader returns a Reader over the first nbits bits of buf. If nbits
// is negative, all 8·len(buf) bits are readable.
func NewReader(buf []byte, nbits int) *Reader {
	if nbits < 0 {
		nbits = 8 * len(buf)
	}
	if nbits > 8*len(buf) {
		panic("bitvec: NewReader nbits exceeds buffer")
	}
	return &Reader{buf: buf, nbit: nbits}
}

// ReadBit reads one bit.
func (r *Reader) ReadBit() (bool, error) {
	if r.pos >= r.nbit {
		return false, ErrShortStream
	}
	b := r.buf[r.pos/8]>>(uint(r.pos)%8)&1 == 1
	r.pos++
	return b, nil
}

// ReadUint reads `bits` bits as an unsigned integer, least significant
// bit first. bits must be in [0, 64].
func (r *Reader) ReadUint(bits int) (uint64, error) {
	if bits < 0 || bits > 64 {
		panic(fmt.Sprintf("bitvec: ReadUint bits=%d out of range", bits))
	}
	// Byte-aligned fast path mirroring Writer.WriteUint.
	if r.pos%8 == 0 && bits%8 == 0 && r.pos+bits <= r.nbit {
		var v uint64
		for i := 0; i < bits; i += 8 {
			v |= uint64(r.buf[r.pos/8]) << uint(i)
			r.pos += 8
		}
		return v, nil
	}
	var v uint64
	for i := 0; i < bits; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b {
			v |= 1 << uint(i)
		}
	}
	return v, nil
}

// ReadBytes reads 8·n bits as n bytes.
func (r *Reader) ReadBytes(n int) ([]byte, error) {
	out := make([]byte, n)
	for i := range out {
		v, err := r.ReadUint(8)
		if err != nil {
			return nil, err
		}
		out[i] = byte(v)
	}
	return out, nil
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.nbit - r.pos }

// ioBufBytes is the read-ahead / write-behind window of the streaming
// bit adapters. It bounds their working set independently of the stream
// length; the envelope layer's chunk framing bounds the layer below.
const ioBufBytes = 4096

// ioBufPool recycles the ioBufBytes windows (and the adapter structs
// wrapping them) across encode/decode calls: a codec round trip on a
// warm pool allocates no window buffers. Adapters are returned by
// their Release methods.
var (
	ioReaderPool = sync.Pool{New: func() any {
		return &IOReader{buf: make([]byte, ioBufBytes)}
	}}
	ioWriterPool = sync.Pool{New: func() any {
		return &IOWriter{buf: make([]byte, 0, ioBufBytes)}
	}}
)

// IOReader is a BitReader that pulls bytes from an io.Reader on demand,
// so decoding a stream buffers at most ioBufBytes here regardless of
// payload size. The total bit length must be declared up front (the
// wire envelope carries it); reads past it fail with ErrShortStream
// without touching the underlying reader, and an underlying stream that
// ends before delivering all declared bits fails with an error wrapping
// io.ErrUnexpectedEOF.
type IOReader struct {
	src   io.Reader
	nbit  int // declared total bits
	pos   int // consumed bits
	buf   []byte
	r, w  int   // valid window is buf[r:w]
	nread int   // bytes pulled from src so far
	err   error // sticky underlying error
}

// NewIOReader returns an IOReader over the first nbits bits of src.
// nbits must be non-negative. The reader comes from an internal pool;
// callers that decode in a loop can return it with Release.
func NewIOReader(src io.Reader, nbits int) *IOReader {
	if nbits < 0 {
		panic("bitvec: NewIOReader negative bit count")
	}
	x := ioReaderPool.Get().(*IOReader)
	*x = IOReader{src: src, nbit: nbits, buf: x.buf}
	return x
}

// Release returns the reader and its window to the internal pool. The
// reader must not be used afterwards.
func (x *IOReader) Release() {
	x.src = nil
	x.err = nil
	ioReaderPool.Put(x)
}

// fill refreshes the window. It is only called at byte boundaries
// (pos%8 == 0) with the window empty, and never requests more bytes
// from src than the declared bit length still covers.
func (x *IOReader) fill() error {
	if x.err != nil {
		return x.err
	}
	// Overflow-safe ceil-division: nbit may be hostile header input
	// near MaxInt, where nbit-pos+7 would wrap negative.
	remaining := x.nbit - x.pos
	want := remaining / 8
	if remaining%8 != 0 {
		want++
	}
	if want > len(x.buf) {
		want = len(x.buf)
	}
	n, err := io.ReadFull(x.src, x.buf[:want])
	x.r, x.w = 0, n
	x.nread += n
	if n > 0 {
		// Serve what arrived; a short read's error resurfaces on the
		// next fill.
		if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
			x.err = err
		}
		return nil
	}
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		err = fmt.Errorf("%w: stream ended with %d of %d declared payload bits undelivered", io.ErrUnexpectedEOF, x.nbit-x.pos, x.nbit)
	}
	x.err = err
	return err
}

// ReadBit implements BitReader.
func (x *IOReader) ReadBit() (bool, error) {
	if x.pos >= x.nbit {
		return false, ErrShortStream
	}
	if x.r == x.w {
		if err := x.fill(); err != nil {
			return false, err
		}
	}
	b := x.buf[x.r]>>(uint(x.pos)%8)&1 == 1
	x.pos++
	if x.pos%8 == 0 {
		x.r++
	}
	return b, nil
}

// ReadUint implements BitReader.
func (x *IOReader) ReadUint(bits int) (uint64, error) {
	if bits < 0 || bits > 64 {
		panic(fmt.Sprintf("bitvec: ReadUint bits=%d out of range", bits))
	}
	// Byte-aligned fast path: assemble whole bytes from the window.
	if x.pos%8 == 0 && bits%8 == 0 && x.pos+bits <= x.nbit {
		var v uint64
		for i := 0; i < bits; i += 8 {
			if x.r == x.w {
				if err := x.fill(); err != nil {
					return 0, err
				}
			}
			v |= uint64(x.buf[x.r]) << uint(i)
			x.r++
			x.pos += 8
		}
		return v, nil
	}
	var v uint64
	for i := 0; i < bits; i++ {
		b, err := x.ReadBit()
		if err != nil {
			return 0, err
		}
		if b {
			v |= 1 << uint(i)
		}
	}
	return v, nil
}

// ReadBytes implements BitReader.
func (x *IOReader) ReadBytes(n int) ([]byte, error) {
	out := make([]byte, n)
	for i := range out {
		v, err := x.ReadUint(8)
		if err != nil {
			return nil, err
		}
		out[i] = byte(v)
	}
	return out, nil
}

// Remaining implements BitReader.
func (x *IOReader) Remaining() int { return x.nbit - x.pos }

// BytesRead reports how many bytes have been pulled from the
// underlying reader so far (consumed bits plus read-ahead), letting
// callers distinguish a stream that never carried its declared bytes
// from one that carried bits the decoder did not consume.
func (x *IOReader) BytesRead() int { return x.nread }

// IOWriter is a BitWriter that streams its bytes to an io.Writer
// through a fixed ioBufBytes window, so encoding never materializes the
// payload. Write errors are sticky and surface from Close (the
// BitWriter methods are error-free by contract); Close flushes the
// zero-padded final byte.
type IOWriter struct {
	dst    io.Writer
	buf    []byte
	cur    byte // partial byte under construction
	nbit   int
	closed bool
	err    error
}

// NewIOWriter returns an IOWriter streaming to dst. The writer comes
// from an internal pool; callers that encode in a loop can return it
// with Release (after Close).
func NewIOWriter(dst io.Writer) *IOWriter {
	w := ioWriterPool.Get().(*IOWriter)
	*w = IOWriter{dst: dst, buf: w.buf[:0]}
	return w
}

// Release returns the writer and its window to the internal pool. The
// writer must not be used afterwards; call Close first to flush.
func (w *IOWriter) Release() {
	w.dst = nil
	w.err = nil
	ioWriterPool.Put(w)
}

func (w *IOWriter) flush() {
	if w.err == nil && len(w.buf) > 0 {
		_, w.err = w.dst.Write(w.buf)
	}
	w.buf = w.buf[:0]
}

// WriteBit implements BitWriter.
func (w *IOWriter) WriteBit(b bool) {
	if b {
		w.cur |= 1 << (uint(w.nbit) % 8)
	}
	w.nbit++
	if w.nbit%8 == 0 {
		w.buf = append(w.buf, w.cur)
		w.cur = 0
		if len(w.buf) == cap(w.buf) {
			w.flush()
		}
	}
}

// WriteUint implements BitWriter.
func (w *IOWriter) WriteUint(v uint64, bits int) {
	if bits < 0 || bits > 64 {
		panic(fmt.Sprintf("bitvec: WriteUint bits=%d out of range", bits))
	}
	// Byte-aligned fast path: whole bytes go straight into the window.
	if w.nbit%8 == 0 && bits%8 == 0 {
		for i := 0; i < bits; i += 8 {
			w.buf = append(w.buf, byte(v>>uint(i)))
			if len(w.buf) == cap(w.buf) {
				w.flush()
			}
		}
		w.nbit += bits
		return
	}
	for i := 0; i < bits; i++ {
		w.WriteBit(v>>uint(i)&1 == 1)
	}
}

// WriteBytes implements BitWriter.
func (w *IOWriter) WriteBytes(p []byte) {
	for _, b := range p {
		w.WriteUint(uint64(b), 8)
	}
}

// BitLen implements BitWriter.
func (w *IOWriter) BitLen() int { return w.nbit }

// Close flushes any buffered bytes, including the zero-padded final
// partial byte, and returns the first write error encountered. It does
// not close the underlying writer.
func (w *IOWriter) Close() error {
	if !w.closed {
		w.closed = true
		if w.nbit%8 != 0 {
			w.buf = append(w.buf, w.cur)
			w.cur = 0
		}
		w.flush()
	}
	return w.err
}

var (
	_ BitReader = (*Reader)(nil)
	_ BitReader = (*IOReader)(nil)
	_ BitWriter = (*Writer)(nil)
	_ BitWriter = (*IOWriter)(nil)
	_ BitWriter = (*SizeWriter)(nil)
)
