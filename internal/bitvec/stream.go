package bitvec

import (
	"errors"
	"fmt"
)

// ErrShortStream is returned by Reader methods when the stream is
// exhausted before the requested number of bits could be read.
var ErrShortStream = errors.New("bitvec: read past end of bit stream")

// Writer accumulates a bit stream. Bits are packed LSB-first within each
// byte. The zero value is ready to use.
//
// Writer is how sketches serialize themselves: the resulting BitLen is
// the sketch's size |S| in bits per Definition 5 of the paper.
type Writer struct {
	buf  []byte
	nbit int
}

// WriteBit appends one bit.
func (w *Writer) WriteBit(b bool) {
	if w.nbit%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b {
		w.buf[w.nbit/8] |= 1 << (uint(w.nbit) % 8)
	}
	w.nbit++
}

// WriteUint appends the low `bits` bits of v, least significant first.
// bits must be in [0, 64].
func (w *Writer) WriteUint(v uint64, bits int) {
	if bits < 0 || bits > 64 {
		panic(fmt.Sprintf("bitvec: WriteUint bits=%d out of range", bits))
	}
	for i := 0; i < bits; i++ {
		w.WriteBit(v>>uint(i)&1 == 1)
	}
}

// WriteBytes appends the bytes of p as 8·len(p) bits.
func (w *Writer) WriteBytes(p []byte) {
	for _, b := range p {
		w.WriteUint(uint64(b), 8)
	}
}

// BitLen returns the number of bits written so far.
func (w *Writer) BitLen() int { return w.nbit }

// Bytes returns the packed stream. The final byte is zero-padded.
// The returned slice aliases the writer's buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Reader consumes a bit stream produced by Writer.
type Reader struct {
	buf  []byte
	pos  int // bit position
	nbit int // total valid bits
}

// NewReader returns a Reader over the first nbits bits of buf. If nbits
// is negative, all 8·len(buf) bits are readable.
func NewReader(buf []byte, nbits int) *Reader {
	if nbits < 0 {
		nbits = 8 * len(buf)
	}
	if nbits > 8*len(buf) {
		panic("bitvec: NewReader nbits exceeds buffer")
	}
	return &Reader{buf: buf, nbit: nbits}
}

// ReadBit reads one bit.
func (r *Reader) ReadBit() (bool, error) {
	if r.pos >= r.nbit {
		return false, ErrShortStream
	}
	b := r.buf[r.pos/8]>>(uint(r.pos)%8)&1 == 1
	r.pos++
	return b, nil
}

// ReadUint reads `bits` bits as an unsigned integer, least significant
// bit first. bits must be in [0, 64].
func (r *Reader) ReadUint(bits int) (uint64, error) {
	if bits < 0 || bits > 64 {
		panic(fmt.Sprintf("bitvec: ReadUint bits=%d out of range", bits))
	}
	var v uint64
	for i := 0; i < bits; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b {
			v |= 1 << uint(i)
		}
	}
	return v, nil
}

// ReadBytes reads 8·n bits as n bytes.
func (r *Reader) ReadBytes(n int) ([]byte, error) {
	out := make([]byte, n)
	for i := range out {
		v, err := r.ReadUint(8)
		if err != nil {
			return nil, err
		}
		out[i] = byte(v)
	}
	return out, nil
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.nbit - r.pos }
