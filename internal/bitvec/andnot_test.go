package bitvec

import (
	"math/rand"
	"testing"
)

// The AndNot kernels are the dEclat diffset building blocks; they are
// checked word-by-word against the Vector reference operations.

func randWords(r *rand.Rand, n int) []uint64 {
	w := make([]uint64, n)
	for i := range w {
		w[i] = r.Uint64()
	}
	return w
}

func TestAndNotKernels(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, nw := range []int{0, 1, 3, 4, 7, 16, 33} {
		a := randWords(r, nw)
		b := randWords(r, nw)
		want := make([]uint64, nw)
		wantCnt := 0
		for i := range want {
			want[i] = a[i] &^ b[i]
			wantCnt += popcount(want[i])
		}
		if got := AndNotCountWords(a, b); got != wantCnt {
			t.Fatalf("nw=%d: AndNotCountWords = %d, want %d", nw, got, wantCnt)
		}
		dst := make([]uint64, nw)
		if got := AndNotInto(dst, a, b); got != wantCnt {
			t.Fatalf("nw=%d: AndNotInto count = %d, want %d", nw, got, wantCnt)
		}
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("nw=%d: AndNotInto word %d = %x, want %x", nw, i, dst[i], want[i])
			}
		}
		// In-place aliasing: dst == a is the accumulator pattern.
		acc := append([]uint64(nil), a...)
		if got := AndNotInto(acc, acc, b); got != wantCnt {
			t.Fatalf("nw=%d: aliased AndNotInto count = %d, want %d", nw, got, wantCnt)
		}
		for i := range acc {
			if acc[i] != want[i] {
				t.Fatalf("nw=%d: aliased AndNotInto word %d differs", nw, i)
			}
		}
	}
}

func TestCappedKernels(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, nw := range []int{1, 31, 32, 33, 64, 157} {
		a := randWords(r, nw)
		b := randWords(r, nw)
		full := AndNotCountWords(a, b)
		fullAnd := AndCountWords(a, b)

		// Unlimited budget: identical to the plain kernels.
		dst := make([]uint64, nw)
		if cnt, ok := AndNotIntoCapped(dst, a, b, nw*64); !ok || cnt != full {
			t.Fatalf("nw=%d: uncapped AndNotIntoCapped = (%d,%v), want (%d,true)", nw, cnt, ok, full)
		}
		for i := range dst {
			if dst[i] != a[i]&^b[i] {
				t.Fatalf("nw=%d: AndNotIntoCapped word %d wrong", nw, i)
			}
		}
		if cnt, ok := AndIntoCapped(dst, a, b, nw*64); !ok || cnt != fullAnd {
			t.Fatalf("nw=%d: uncapped AndIntoCapped = (%d,%v), want (%d,true)", nw, cnt, ok, fullAnd)
		}

		// Budget exactly the count: still a full pass.
		if cnt, ok := AndNotIntoCapped(dst, a, b, full); !ok || cnt != full {
			t.Fatalf("nw=%d: exact-budget pass = (%d,%v)", nw, cnt, ok)
		}
		// Budget below the count: must report an early exit with a
		// running count already past the budget.
		if full > 0 {
			cnt, ok := AndNotIntoCapped(dst, a, b, full-1)
			if ok {
				t.Fatalf("nw=%d: budget %d not enforced (cnt=%d)", nw, full-1, cnt)
			}
			if cnt <= full-1 {
				t.Fatalf("nw=%d: early exit with cnt %d ≤ budget %d", nw, cnt, full-1)
			}
		}
		if fullAnd > 0 {
			if cnt, ok := AndIntoCapped(dst, a, b, fullAnd-1); ok || cnt <= fullAnd-1 {
				t.Fatalf("nw=%d: AndIntoCapped budget not enforced (%d,%v)", nw, cnt, ok)
			}
		}
	}
}

func popcount(x uint64) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

func TestNotInto(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 5, 63, 64, 65, 129, 200} {
		nw := wordsFor(n)
		src := make([]uint64, nw)
		v := New(n)
		for i := 0; i < n; i++ {
			if r.Intn(2) == 1 {
				v.Set(i)
			}
		}
		copy(src, v.Words())
		dst := make([]uint64, nw)
		cnt := NotInto(dst, src, n)
		if want := n - v.Count(); cnt != want {
			t.Fatalf("n=%d: NotInto count = %d, want %d", n, cnt, want)
		}
		got := Wrap(n, dst)
		for i := 0; i < n; i++ {
			if got.Get(i) == v.Get(i) {
				t.Fatalf("n=%d: bit %d not complemented", n, i)
			}
		}
		// The invariant every kernel relies on: bits past n are zero.
		if n%64 != 0 && dst[nw-1]>>(uint(n)%64) != 0 {
			t.Fatalf("n=%d: NotInto left tail bits set: %x", n, dst[nw-1])
		}
	}
}

func TestAndNotMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"AndNotCountWords": func() { AndNotCountWords(make([]uint64, 2), make([]uint64, 3)) },
		"AndNotInto":       func() { AndNotInto(make([]uint64, 2), make([]uint64, 2), make([]uint64, 3)) },
		"NotInto":          func() { NotInto(make([]uint64, 2), make([]uint64, 2), 200) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: length mismatch did not panic", name)
				}
			}()
			f()
		}()
	}
}
