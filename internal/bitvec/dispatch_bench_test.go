//go:build amd64 && !purego

package bitvec

import (
	"fmt"
	"testing"
)

// BenchmarkKernelCrossover measures the raw assembly entry points
// against the Go loops across operand sizes; kernelMinWords in
// dispatch_amd64.go is set from this table. Run with
//
//	go test ./internal/bitvec/ -run '^$' -bench KernelCrossover
func BenchmarkKernelCrossover(b *testing.B) {
	if !hwAVX2 {
		b.Skip("CPU lacks AVX2")
	}
	for _, n := range []int{4, 8, 16, 32, 64, 157, 512, 1563} {
		a := make([]uint64, n)
		bb := make([]uint64, n)
		dst := make([]uint64, n)
		for i := range a {
			a[i] = 0x9e3779b97f4a7c15 * uint64(i+1)
			bb[i] = 0xd1342543de82ef95 * uint64(i+3)
		}
		b.Run(fmt.Sprintf("andcount_go_w%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkInt = andCountWordsGo(a, bb)
			}
		})
		b.Run(fmt.Sprintf("andcount_avx2_w%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkInt = andCountWordsAVX2(&a[0], &bb[0], n)
			}
		})
		b.Run(fmt.Sprintf("andinto_go_w%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkInt = andIntoGo(dst, a, bb)
			}
		})
		b.Run(fmt.Sprintf("andinto_avx2_w%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkInt = andIntoAVX2(&dst[0], &a[0], &bb[0], n)
			}
		})
		b.Run(fmt.Sprintf("andnotcount_go_w%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkInt = andNotCountWordsGo(a, bb)
			}
		})
		b.Run(fmt.Sprintf("andnotcount_avx2_w%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkInt = andNotCountWordsAVX2(&a[0], &bb[0], n)
			}
		})
	}
}

var sinkInt int
