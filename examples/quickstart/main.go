// Quickstart: build a database, let the Theorem 12 planner choose the
// smallest sketch, query it, and ship it over the wire.
package main

import (
	"context"
	"fmt"
	"log"

	itemsketch "repro"
	"repro/internal/rng"
)

func main() {
	// A database of 50,000 user records over 64 binary attributes,
	// with two correlated attribute pairs planted.
	const d, n = 64, 50000
	r := rng.New(2016)
	db := itemsketch.NewDatabase(d)
	for i := 0; i < n; i++ {
		var attrs []int
		for a := 0; a < d; a++ {
			if r.Bernoulli(0.05) {
				attrs = append(attrs, a)
			}
		}
		row := map[int]bool{}
		for _, a := range attrs {
			row[a] = true
		}
		if r.Bernoulli(0.30) { // attributes 7 and 21 co-occur often
			row[7], row[21] = true, true
		}
		flat := make([]int, 0, len(row))
		for a := range row {
			flat = append(flat, a)
		}
		db.AddRowAttrs(flat...)
	}

	// Ask for a For-All estimator: every 2-itemset within ±0.02,
	// failure probability 5%. BuildEstimator returns a concrete
	// EstimatorSketch, so no type assertion is needed to query it.
	ctx := context.Background()
	sk, plan, err := itemsketch.BuildEstimator(ctx, db,
		itemsketch.WithK(2), itemsketch.WithEps(0.02), itemsketch.WithDelta(0.05),
		itemsketch.WithMode(itemsketch.ForAll), itemsketch.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planner costs (bits): release-db=%.0f release-answers=%.0f subsample=%.0f\n",
		plan.Costs["release-db"], plan.Costs["release-answers"], plan.Costs["subsample"])
	fmt.Printf("chose %s: %d bits = %.1f KB (database itself: %.1f KB)\n",
		sk.Name(), sk.SizeBits(), float64(sk.SizeBits())/8192, float64(db.SizeBits())/8192)

	// Query directly...
	T := itemsketch.MustItemset(7, 21)
	fmt.Printf("f(%v): true %.4f, sketch %.4f\n", T, db.Frequency(T), sk.Estimate(T))

	// ...or through the unified Querier interface, which also serves
	// exact databases and batches queries across CPUs.
	q := itemsketch.QuerySketch(sk)
	frequent, err := q.Contains(ctx, T)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frequent(%v) at eps=0.02? %v\n", T, frequent)
	batch := []itemsketch.Itemset{T, itemsketch.MustItemset(1, 2), itemsketch.MustItemset(40, 41)}
	ests := make([]float64, len(batch))
	if err := q.EstimateMany(ctx, batch, ests); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batched estimates: %.4f %.4f %.4f\n", ests[0], ests[1], ests[2])

	// Serialize into the self-describing envelope — the payload bit
	// length is the paper's |S| measure — and recover on the "other
	// side" from the bytes alone.
	wire := itemsketch.Marshal(sk)
	env, err := itemsketch.Inspect(wire)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("envelope: v%d %s, %d payload bits\n", env.Version, env.Kind, env.PayloadBits)
	sk2, err := itemsketch.Unmarshal(wire)
	if err != nil {
		log.Fatal(err)
	}
	est2, err := itemsketch.QuerySketch(sk2).Estimate(ctx, T)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after round trip over %d bytes: f(%v) = %.4f\n", len(wire), T, est2)
}
