// Quickstart: build a database, let the Theorem 12 planner choose the
// smallest sketch, query it, and ship it over the wire.
package main

import (
	"fmt"
	"log"

	itemsketch "repro"
	"repro/internal/rng"
)

func main() {
	// A database of 50,000 user records over 64 binary attributes,
	// with two correlated attribute pairs planted.
	const d, n = 64, 50000
	r := rng.New(2016)
	db := itemsketch.NewDatabase(d)
	for i := 0; i < n; i++ {
		var attrs []int
		for a := 0; a < d; a++ {
			if r.Bernoulli(0.05) {
				attrs = append(attrs, a)
			}
		}
		row := map[int]bool{}
		for _, a := range attrs {
			row[a] = true
		}
		if r.Bernoulli(0.30) { // attributes 7 and 21 co-occur often
			row[7], row[21] = true, true
		}
		flat := make([]int, 0, len(row))
		for a := range row {
			flat = append(flat, a)
		}
		db.AddRowAttrs(flat...)
	}

	// Ask for a For-All estimator: every 2-itemset within ±0.02,
	// failure probability 5%.
	p := itemsketch.Params{K: 2, Eps: 0.02, Delta: 0.05,
		Mode: itemsketch.ForAll, Task: itemsketch.Estimator}
	sk, plan, err := itemsketch.Auto(db, p, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planner costs (bits): release-db=%.0f release-answers=%.0f subsample=%.0f\n",
		plan.Costs["release-db"], plan.Costs["release-answers"], plan.Costs["subsample"])
	fmt.Printf("chose %s: %d bits = %.1f KB (database itself: %.1f KB)\n",
		sk.Name(), sk.SizeBits(), float64(sk.SizeBits())/8192, float64(db.SizeBits())/8192)

	// Query.
	T := itemsketch.MustItemset(7, 21)
	est := sk.(itemsketch.EstimatorSketch).Estimate(T)
	fmt.Printf("f(%v): true %.4f, sketch %.4f\n", T, db.Frequency(T), est)
	fmt.Printf("frequent(%v) at eps=%g? %v\n", T, p.Eps, sk.Frequent(T))

	// Serialize — the bit length is the paper's |S| measure — and
	// recover on the "other side".
	data, bits := itemsketch.Marshal(sk)
	sk2, err := itemsketch.Unmarshal(data, bits)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after round trip over %d bytes: f(%v) = %.4f\n",
		len(data), T, sk2.(itemsketch.EstimatorSketch).Estimate(T))
}
