// Census-style data release (§1.1.2 "Efficient Data Release"): a
// curator publishes an itemset sketch instead of full marginal
// contingency tables. Any user reconstructs every cell of any k-way
// marginal table from the sketch by inclusion–exclusion — itemset
// frequencies are monotone conjunctions, and general conjunction cells
// follow by Möbius inversion (footnote 2 of the paper).
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/bits"

	itemsketch "repro"
	"repro/internal/rng"
)

// attribute layout of the synthetic census
const (
	attrEmployed = iota
	attrMarried
	attrVeteran
	attrHomeowner
	attrUrban
	attrCollege
	attrRetired
	attrParent
	dAttrs
)

var names = [dAttrs]string{
	"employed", "married", "veteran", "homeowner",
	"urban", "college", "retired", "parent",
}

func main() {
	// The curator's raw microdata: a million synthetic residents with
	// correlated attributes. The sketch size below does not depend on
	// n at all — that is SUBSAMPLE's whole appeal.
	const n = 1000000
	r := rng.New(1790) // first census year
	db := itemsketch.NewDatabase(dAttrs)
	for i := 0; i < n; i++ {
		var row []int
		retired := r.Bernoulli(0.17)
		employed := !retired && r.Bernoulli(0.75)
		college := r.Bernoulli(0.35)
		urban := r.Bernoulli(0.6)
		married := r.Bernoulli(0.5)
		if retired {
			married = r.Bernoulli(0.62)
		}
		homeowner := r.Bernoulli(0.4)
		if married {
			homeowner = r.Bernoulli(0.7)
		}
		add := func(cond bool, a int) {
			if cond {
				row = append(row, a)
			}
		}
		add(employed, attrEmployed)
		add(married, attrMarried)
		add(r.Bernoulli(0.07), attrVeteran)
		add(homeowner, attrHomeowner)
		add(urban, attrUrban)
		add(college, attrCollege)
		add(retired, attrRetired)
		add(married && r.Bernoulli(0.55), attrParent)
		db.AddRowAttrs(row...)
	}

	// Publish: a For-All estimator sketch covering up to 3-way
	// marginals at ±0.5% — every downstream user gets the same
	// guarantee without the curator re-touching the microdata.
	sk, _, err := itemsketch.BuildEstimator(context.Background(), db,
		itemsketch.WithK(3), itemsketch.WithEps(0.005), itemsketch.WithDelta(0.01),
		itemsketch.WithMode(itemsketch.ForAll),
		itemsketch.WithAlgorithm(itemsketch.Subsample{}), itemsketch.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("microdata: %.1f KB; published sketch: %.1f KB\n\n",
		float64(db.SizeBits())/8192, float64(sk.SizeBits())/8192)

	// Ship it: the sketch streams to its chunked wire form
	// (itemsketch.MarshalTo) without ever materializing the payload —
	// the path a curator takes when the sketch itself is too big for
	// one []byte. Census attributes are heavily correlated, so the
	// optional flate compression buys a real factor on the wire; the
	// RELEASE-DB checkpoint of the full microdata (the other artifact a
	// curator archives) compresses even harder.
	var plain, packed bytes.Buffer
	if _, err := itemsketch.MarshalTo(&plain, sk); err != nil {
		log.Fatal(err)
	}
	if _, err := itemsketch.MarshalTo(&packed, sk, itemsketch.WithCompression()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wire: %.1f KB plain, %.1f KB compressed (%.2fx)\n",
		float64(plain.Len())/1024, float64(packed.Len())/1024,
		float64(plain.Len())/float64(packed.Len()))
	rdb, _, err := itemsketch.Build(context.Background(), db,
		itemsketch.WithK(3), itemsketch.WithEps(0.005), itemsketch.WithDelta(0.01),
		itemsketch.WithMode(itemsketch.ForAll),
		itemsketch.WithAlgorithm(itemsketch.ReleaseDB{}))
	if err != nil {
		log.Fatal(err)
	}
	var rplain, rpacked bytes.Buffer
	if _, err := itemsketch.MarshalTo(&rplain, rdb); err != nil {
		log.Fatal(err)
	}
	if _, err := itemsketch.MarshalTo(&rpacked, rdb, itemsketch.WithCompression()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("release-db checkpoint: %.1f KB plain, %.1f KB compressed (%.2fx)\n\n",
		float64(rplain.Len())/1024, float64(rpacked.Len())/1024,
		float64(rplain.Len())/float64(rpacked.Len()))

	// Every user decodes the same stream back — one chunk of buffering,
	// any io.Reader source.
	decoded, err := itemsketch.UnmarshalFrom(bytes.NewReader(packed.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	sk = decoded.(itemsketch.EstimatorSketch)

	// A user rebuilds the (married, homeowner) 2-way marginal table.
	table := marginal(sk, []int{attrMarried, attrHomeowner})
	exact := marginalSource(dbFreq{db}, []int{attrMarried, attrHomeowner})
	fmt.Println("2-way marginal (married x homeowner): sketch vs exact")
	for cell := 0; cell < 4; cell++ {
		fmt.Printf("  married=%d homeowner=%d : %.4f  (exact %.4f)\n",
			cell>>1&1, cell&1, table[cell], exact[cell])
	}

	// And a 3-way marginal.
	attrs3 := []int{attrEmployed, attrRetired, attrCollege}
	t3 := marginal(sk, attrs3)
	e3 := marginalSource(dbFreq{db}, attrs3)
	fmt.Println("\n3-way marginal (employed x retired x college): sketch vs exact")
	maxErr := 0.0
	for cell := 0; cell < 8; cell++ {
		err := abs(t3[cell] - e3[cell])
		if err > maxErr {
			maxErr = err
		}
		fmt.Printf("  %s=%d %s=%d %s=%d : %.4f (exact %.4f)\n",
			names[attrs3[0]], cell>>2&1, names[attrs3[1]], cell>>1&1, names[attrs3[2]], cell&1,
			t3[cell], e3[cell])
	}
	fmt.Printf("\nmax cell error %.4f — inclusion–exclusion over 3 itemset queries per cell keeps it ~2^k*eps\n", maxErr)
}

type freqSource interface {
	Frequency(t itemsketch.Itemset) float64
}

type dbFreq struct{ db *itemsketch.Database }

func (s dbFreq) Frequency(t itemsketch.Itemset) float64 { return s.db.Frequency(t) }

type skFreq struct{ es itemsketch.EstimatorSketch }

func (s skFreq) Frequency(t itemsketch.Itemset) float64 { return s.es.Estimate(t) }

// marginal reconstructs all 2^k cells of the marginal table on attrs
// from monotone-conjunction (itemset) frequencies by inclusion–
// exclusion: P(pattern) = Σ_{S ⊇ ones(pattern)} (−1)^{|S|−|ones|} f_S.
func marginal(es itemsketch.EstimatorSketch, attrs []int) []float64 {
	return marginalSource(skFreq{es}, attrs)
}

func marginalSource(src freqSource, attrs []int) []float64 {
	k := len(attrs)
	// f[mask] = frequency of the itemset {attrs[i] : mask_i = 1}.
	f := make([]float64, 1<<uint(k))
	for mask := 0; mask < 1<<uint(k); mask++ {
		var sub []int
		for i := 0; i < k; i++ {
			if mask>>uint(i)&1 == 1 {
				sub = append(sub, attrs[i])
			}
		}
		f[mask] = src.Frequency(itemsketch.MustItemset(sub...))
	}
	out := make([]float64, 1<<uint(k))
	for pattern := 0; pattern < 1<<uint(k); pattern++ {
		// cell index convention: bit (k-1-i) of `pattern` is attrs[i]
		ones := 0
		for i := 0; i < k; i++ {
			if pattern>>uint(k-1-i)&1 == 1 {
				ones |= 1 << uint(i)
			}
		}
		v := 0.0
		for s := 0; s < 1<<uint(k); s++ {
			if s&ones == ones { // S ⊇ ones
				sign := 1.0
				if (bits.OnesCount(uint(s))-bits.OnesCount(uint(ones)))%2 == 1 {
					sign = -1
				}
				v += sign * f[s]
			}
		}
		if v < 0 {
			v = 0 // clamp small negative noise
		}
		out[pattern] = v
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
