// Market-basket analysis on a sketch (§1.1.2 of the paper): a retailer
// streams 100k baskets, keeps only a SUBSAMPLE sketch, and an analyst
// mines frequent bundles and association rules from the sketch alone —
// then we compare against exact mining to see what the ±ε guarantee
// cost us.
package main

import (
	"context"
	"fmt"
	"log"

	itemsketch "repro"
	"repro/internal/dataset"
	"repro/internal/rng"
)

func main() {
	const d, n = 96, 100000
	r := rng.New(7)
	bundles := [][]int{
		{3, 11},      // chips + salsa
		{20, 21, 22}, // pasta + sauce + parmesan
		{40, 41},     // toothbrush + toothpaste
	}
	db := dataset.GenMarketBasket(r, n, d, dataset.BasketConfig{
		MeanSize:     5,
		ZipfExponent: 1.25,
		Bundles:      bundles,
		BundleProb:   0.3,
	})

	// The retailer ships a sketch sized for all 3-itemset queries.
	ctx := context.Background()
	p := itemsketch.Params{K: 3, Eps: 0.015, Delta: 0.05,
		Mode: itemsketch.ForAll, Task: itemsketch.Estimator}
	sk, _, err := itemsketch.BuildEstimator(ctx, db, itemsketch.WithParams(p),
		itemsketch.WithAlgorithm(itemsketch.Subsample{}), itemsketch.WithSeed(99))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d baskets x %d items = %.1f KB\n", n, d, float64(db.SizeBits())/8192)
	fmt.Printf("sketch:   %d sampled baskets = %.1f KB (%.1fx smaller)\n\n",
		itemsketch.SampleSize(d, p), float64(sk.SizeBits())/8192,
		float64(db.SizeBits())/float64(sk.SizeBits()))

	// Mining runs on the unified Querier interface: the same call
	// against the exact database and against the sketch.
	const minSup = 0.08
	exact, err := itemsketch.AprioriContext(ctx, itemsketch.QueryDatabase(db), minSup, 3)
	if err != nil {
		log.Fatal(err)
	}
	approx, err := itemsketch.AprioriContext(ctx, itemsketch.QuerySketch(sk), minSup, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("frequent itemsets at minsup=%.2f: exact %d, from sketch %d\n", minSup, len(exact), len(approx))
	fmt.Println("\nbundles of size >= 2 mined from the sketch:")
	for _, rres := range approx {
		if rres.Items.Len() >= 2 {
			fmt.Printf("  %-14v freq %.3f\n", rres.Items, rres.Freq)
		}
	}

	// Condensed representations (§1.1.1).
	maximal := itemsketch.Maximal(approx)
	closed := itemsketch.Closed(approx)
	fmt.Printf("\ncondensed: %d maximal, %d closed (of %d)\n", len(maximal), len(closed), len(approx))

	// Rules from the sketch.
	rules := itemsketch.AssociationRules(approx, 0.5)
	fmt.Println("\ntop association rules from the sketch (confidence >= 0.5):")
	count := 0
	for _, rule := range rules {
		if rule.Antecedent.Len() == 1 && rule.Consequent.Len() >= 1 && rule.Lift > 1.5 {
			fmt.Printf("  %v => %-10v conf %.2f lift %.1f\n",
				rule.Antecedent, rule.Consequent, rule.Confidence, rule.Lift)
			count++
			if count >= 8 {
				break
			}
		}
	}
}
