// Streaming: build the paper's optimal sketch in one pass with
// reservoir sampling, and contrast with Misra–Gries — the single-item
// heavy-hitters summary that beats sampling for items but, by the
// paper's lower bounds, cannot be extended to itemsets.
package main

import (
	"context"
	"fmt"
	"log"

	itemsketch "repro"
	"repro/internal/rng"
)

func main() {
	const d = 64
	const streamLen = 500000

	// One pass over the stream, two summaries side by side.
	res, err := itemsketch.NewReservoir(d, 20000, 11)
	if err != nil {
		log.Fatal(err)
	}
	mg, err := itemsketch.NewMisraGries(64) // ~1/eps counters for items
	if err != nil {
		log.Fatal(err)
	}

	r := rng.New(4)
	gen := rng.NewZipf(r, d, 1.2)
	truthPair := 0 // occurrences of the planted pair {5, 9}
	itemCounts := make([]int64, d)
	for i := 0; i < streamLen; i++ {
		// basket of 3-6 Zipf items, plus a planted pair 20% of the time
		var attrs []int
		for j := 0; j < 3+r.Intn(4); j++ {
			attrs = append(attrs, gen.Next())
		}
		if r.Bernoulli(0.2) {
			attrs = append(attrs, 5, 9)
		}
		row := dedupe(attrs)
		res.AddAttrs(row...)
		for _, a := range row {
			mg.Add(a)
			itemCounts[a]++
		}
		if contains(row, 5) && contains(row, 9) {
			truthPair++
		}
	}

	fmt.Printf("stream: %d baskets; reservoir holds %d (%.1f%%)\n",
		res.Seen(), res.Len(), 100*float64(res.Len())/float64(res.Seen()))

	// Itemset query from the reservoir — this is SUBSAMPLE, the
	// sketch the paper proves essentially optimal.
	T := itemsketch.MustItemset(5, 9)
	trueF := float64(truthPair) / float64(streamLen)
	fmt.Printf("\nitemset {5,9}: true freq %.4f, reservoir estimate %.4f\n", trueF, res.Estimate(T))

	// Misra–Gries answers *single-item* questions deterministically...
	fmt.Println("\nMisra-Gries heavy items (phi = 0.05):")
	for _, it := range mg.HeavyHitters(0.05) {
		fmt.Printf("  item %-3d count >= %-8d (true %d)\n", it, mg.Count(it), itemCounts[it])
	}
	// ...but has no itemset story: the paper's point is that for
	// k >= 2 itemsets, nothing beats the reservoir by more than
	// constant/log factors (Theorems 13-17).
	fmt.Println("\nMisra-Gries cannot answer f({5,9}); the reservoir can — and the paper")
	fmt.Println("proves no summary of comparable size can do fundamentally better.")

	// The reservoir contents also feed the offline miners directly,
	// through the same Querier interface sketches use.
	sample := res.Database()
	sample.BuildColumnIndex()
	top, err := itemsketch.AprioriContext(context.Background(),
		itemsketch.QueryDatabase(sample), 0.15, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfrequent itemsets mined from the reservoir (minsup 0.15): %d found\n", len(top))
	for _, m := range top {
		if m.Items.Len() == 2 {
			fmt.Printf("  %v freq %.3f\n", m.Items, m.Freq)
		}
	}
}

func dedupe(a []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, v := range a {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func contains(a []int, x int) bool {
	for _, v := range a {
		if v == x {
			return true
		}
	}
	return false
}
