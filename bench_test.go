// Benchmarks regenerating every experiment in the paper reproduction
// (one per DESIGN.md §4 entry, E1–E11) plus operational benchmarks of
// the public API. Run with:
//
//	go test -bench=. -benchmem
package itemsketch_test

import (
	"context"
	"io"
	"runtime"
	"testing"

	itemsketch "repro"
	"repro/internal/bitvec"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/lowerbound"
	"repro/internal/rng"
)

func benchExperiment(b *testing.B, id string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(io.Discard, id, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1SubsampleAccuracy(b *testing.B)    { benchExperiment(b, "E1") }
func BenchmarkE2PlannerSpace(b *testing.B)         { benchExperiment(b, "E2") }
func BenchmarkE3Thm13Reconstruction(b *testing.B)  { benchExperiment(b, "E3") }
func BenchmarkE4IndexProtocol(b *testing.B)        { benchExperiment(b, "E4") }
func BenchmarkE5ShatteredSet(b *testing.B)         { benchExperiment(b, "E5") }
func BenchmarkE6Thm15Core(b *testing.B)            { benchExperiment(b, "E6") }
func BenchmarkE7Thm15Amplified(b *testing.B)       { benchExperiment(b, "E7") }
func BenchmarkE8HadamardSpectrum(b *testing.B)     { benchExperiment(b, "E8") }
func BenchmarkE9LPDecoding(b *testing.B)           { benchExperiment(b, "E9") }
func BenchmarkE10MedianAmplification(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkE11MiningOnSketch(b *testing.B)      { benchExperiment(b, "E11") }
func BenchmarkE12ImportanceAblation(b *testing.B)  { benchExperiment(b, "E12") }
func BenchmarkE13PrivacyBridge(b *testing.B)       { benchExperiment(b, "E13") }

// Operational benchmarks of the public API.

func benchDB(n, d int) *itemsketch.Database {
	r := rng.New(1)
	db := itemsketch.NewDatabase(d)
	for i := 0; i < n; i++ {
		var attrs []int
		for a := 0; a < d; a++ {
			if r.Bernoulli(0.1) {
				attrs = append(attrs, a)
			}
		}
		db.AddRowAttrs(attrs...)
	}
	return db
}

// BenchmarkSubsampleBuild measures sketch construction, the operation
// the paper proves is the whole game. Serial pins one worker; Parallel
// uses the default GOMAXPROCS fan-out of the chunked deterministic
// build (identical output bits; only wall-clock differs). The sample
// override spans several construction chunks so the sharded path
// engages; Parallel only beats Serial with GOMAXPROCS > 1.
func BenchmarkSubsampleBuild(b *testing.B) {
	db := benchDB(50000, 64)
	p := itemsketch.Params{K: 2, Eps: 0.05, Delta: 0.05,
		Mode: itemsketch.ForAll, Task: itemsketch.Estimator}
	const sample = 1 << 15
	ctx := context.Background()
	run := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _, err := itemsketch.Build(ctx, db,
					itemsketch.WithParams(p),
					itemsketch.WithAlgorithm(itemsketch.Subsample{SampleOverride: sample}),
					itemsketch.WithSeed(uint64(i)),
					itemsketch.WithWorkers(workers))
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("Serial", run(1))
	b.Run("Parallel", run(0))
}

// BenchmarkMedianAmplifierBuild measures the Theorem 17 amplifier
// build: independent sub-sketches fanned out across the worker pool,
// seeded deterministically per copy.
func BenchmarkMedianAmplifierBuild(b *testing.B) {
	db := benchDB(50000, 64)
	p := itemsketch.Params{K: 2, Eps: 0.05, Delta: 0.05,
		Mode: itemsketch.ForAll, Task: itemsketch.Estimator}
	m := itemsketch.MedianAmplifier{
		Base:           itemsketch.Subsample{Seed: 1, SampleOverride: 2048},
		CopiesOverride: 32,
	}
	ctx := context.Background()
	run := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _, err := itemsketch.Build(ctx, db,
					itemsketch.WithParams(p),
					itemsketch.WithAlgorithm(m),
					itemsketch.WithSeed(1),
					itemsketch.WithWorkers(workers))
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("Serial", run(1))
	b.Run("Parallel", run(0))
}

// BenchmarkImportanceSampleIngest reports the amortized per-row ingest
// cost of the arena-backed ImportanceSample: one Sketch call draws b.N
// rows, so per-op numbers are per sampled row and the fixed setup
// allocations (weights, cumulative sums, one arena) amortize to
// 0 allocs/op.
func BenchmarkImportanceSampleIngest(b *testing.B) {
	db := benchDB(50000, 64)
	p := itemsketch.Params{K: 2, Eps: 0.05, Delta: 0.05,
		Mode: itemsketch.ForAll, Task: itemsketch.Estimator}
	b.ReportAllocs()
	b.ResetTimer()
	is := itemsketch.ImportanceSample{Seed: 1, SampleOverride: b.N}
	if _, err := is.Sketch(db, p); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSketchQueryEstimate(b *testing.B) {
	db := benchDB(50000, 64)
	p := itemsketch.Params{K: 2, Eps: 0.05, Delta: 0.05,
		Mode: itemsketch.ForAll, Task: itemsketch.Estimator}
	sk, err := (itemsketch.Subsample{Seed: 1}).Sketch(db, p)
	if err != nil {
		b.Fatal(err)
	}
	es := sk.(itemsketch.EstimatorSketch)
	T := itemsketch.MustItemset(3, 41)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = es.Estimate(T)
	}
}

func BenchmarkSketchSerialize(b *testing.B) {
	db := benchDB(20000, 64)
	p := itemsketch.Params{K: 2, Eps: 0.05, Delta: 0.05,
		Mode: itemsketch.ForAll, Task: itemsketch.Estimator}
	sk, err := (itemsketch.Subsample{Seed: 1}).Sketch(db, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := itemsketch.Unmarshal(itemsketch.Marshal(sk)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactFrequencyQuery(b *testing.B) {
	db := benchDB(100000, 64)
	db.BuildColumnIndex()
	T := itemsketch.MustItemset(3, 41, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = db.Frequency(T)
	}
}

// BenchmarkScanSerialVsParallel compares the horizontal scan paths on
// the 100k-row benchmark database without a column index. The parallel
// variant shards rows across GOMAXPROCS goroutines (it only wins with
// more than one CPU; Count falls back to serial automatically on a
// single-CPU machine).
func BenchmarkScanSerialVsParallel(b *testing.B) {
	db := benchDB(100000, 64)
	T := itemsketch.MustItemset(3, 41, 50)
	b.Run("Serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = db.ScanCount(T, 1)
		}
	})
	b.Run("Parallel", func(b *testing.B) {
		workers := runtime.GOMAXPROCS(0)
		if workers < 2 {
			workers = 2 // still exercise the sharded path
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = db.ScanCount(T, workers)
		}
	})
}

// BenchmarkCountManyBatch measures the batched exact-query API against
// the equivalent loop of single queries on the vertical path.
func BenchmarkCountManyBatch(b *testing.B) {
	db := benchDB(100000, 64)
	db.BuildColumnIndex()
	r := rng.New(99)
	ts := make([]itemsketch.Itemset, 256)
	for i := range ts {
		a := r.Intn(64)
		c := (a + 1 + r.Intn(63)) % 64
		ts[i] = itemsketch.MustItemset(a, c)
	}
	out := make([]int, len(ts))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.CountManyInto(out, ts)
	}
}

func BenchmarkAprioriOnSketch(b *testing.B) {
	db := benchDB(50000, 48)
	p := itemsketch.Params{K: 3, Eps: 0.02, Delta: 0.05,
		Mode: itemsketch.ForAll, Task: itemsketch.Estimator}
	sk, err := (itemsketch.Subsample{Seed: 1}).Sketch(db, p)
	if err != nil {
		b.Fatal(err)
	}
	q := itemsketch.QuerySketch(sk)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := itemsketch.AprioriContext(ctx, q, 0.08, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReservoirStream(b *testing.B) {
	res, err := itemsketch.NewReservoir(64, 10000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.AddAttrs(i%64, (i+7)%64, (i+13)%64)
	}
}

// Ablation benchmarks for the design choices DESIGN.md §3 calls out.

func BenchmarkAblationLemma19Exhaustive(b *testing.B) {
	// v = 12: exhaustive consistency search (the guaranteed path).
	const v, eps = 12, 0.2
	truth := uint64(0xA5A) & (1<<v - 1)
	bs := make([]bool, 1<<v)
	for s := range bs {
		ip := 0
		x := truth & uint64(s)
		for x != 0 {
			x &= x - 1
			ip++
		}
		bs[s] = float64(ip)/float64(v) > eps
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lowerbound.Lemma19Decode(bs, v, eps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLemma19Greedy(b *testing.B) {
	// v = 16 > MaxExhaustiveV: the greedy fallback path.
	const v = lowerbound.MaxExhaustiveV + 2
	const eps = 1.0 / 50
	truth := uint64(0xBEEF) & (1<<v - 1)
	bs := make([]bool, 1<<v)
	for s := range bs {
		ip := 0
		x := truth & uint64(s)
		for x != 0 {
			x &= x - 1
			ip++
		}
		bs[s] = float64(ip)/float64(v) > eps
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lowerbound.Lemma19Decode(bs, v, eps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationL1VsL2Decode(b *testing.B) {
	de, err := lowerbound.NewDe(24, 10, 2, 7)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(8)
	yv := randomColumn(r, de.N())
	col, err := de.EncodeColumn(yv)
	if err != nil {
		b.Fatal(err)
	}
	oracle := lowerbound.ExactEstimator{DB: col}
	b.Run("L1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := de.DecodeColumnL1(oracle, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("L2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := de.DecodeColumnL2(oracle, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func randomColumn(r *rng.RNG, n int) *bitvec.Vector {
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		if r.Bool() {
			v.Set(i)
		}
	}
	return v
}

func BenchmarkAblationMinersExactDB(b *testing.B) {
	r := rng.New(1)
	db := dataset.GenMarketBasket(r, 10000, 48, dataset.BasketConfig{MeanSize: 5, ZipfExponent: 1.2})
	db.BuildColumnIndex()
	ctx := context.Background()
	b.Run("Apriori", func(b *testing.B) {
		q := itemsketch.QueryDatabase(db)
		for i := 0; i < b.N; i++ {
			if _, err := itemsketch.AprioriContext(ctx, q, 0.05, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Eclat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = itemsketch.Eclat(db, 0.05, 3)
		}
	})
	b.Run("FPGrowth", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = itemsketch.FPGrowth(db, 0.05, 3)
		}
	})
}
